//! CLH queue lock.
//!
//! The CLH lock (Craig, Landin & Hagersten) is the second queue-based
//! algorithm exposed by GLS (Table 1). Unlike MCS, each waiter spins on its
//! *predecessor's* node, and nodes are handed down the queue: when a thread
//! releases the lock its node becomes the successor's predecessor and the
//! releaser recycles the node it had been spinning on.
//!
//! As with [`McsLock`](crate::McsLock), nodes are pooled per thread and
//! spilled to a process-wide list on thread exit so that node memory is never
//! returned to the allocator while the process runs; stale reads during racy
//! inspection are therefore always reads of valid memory.

// The process-wide node spill list is init-once bookkeeping on the cold
// thread-exit path, deliberately invisible to the model explorer
// (see clippy.toml).
#![allow(clippy::disallowed_types)]

use gls_sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::ptr;
use std::sync::Mutex;

use crate::cache_padded::CachePadded;
use crate::raw::{QueueInformed, RawLock, RawTryLock};
use crate::spin_wait::SpinWait;

/// One CLH queue node.
#[derive(Debug)]
struct ClhNode {
    /// True while the thread that published this node holds or waits for the
    /// lock; successors spin on it.
    locked: AtomicBool,
    _pad: [u8; 56],
}

impl ClhNode {
    fn new(locked: bool) -> *mut ClhNode {
        Box::into_raw(Box::new(ClhNode {
            locked: AtomicBool::new(locked),
            _pad: [0; 56],
        }))
    }
}

static SPILL: Mutex<Vec<usize>> = Mutex::new(Vec::new());

struct NodePool {
    nodes: Vec<*mut ClhNode>,
}

impl NodePool {
    fn acquire(&mut self) -> *mut ClhNode {
        if let Some(node) = self.nodes.pop() {
            return node;
        }
        if let Ok(mut spill) = SPILL.lock() {
            if let Some(addr) = spill.pop() {
                return addr as *mut ClhNode;
            }
        }
        ClhNode::new(false)
    }

    fn release(&mut self, node: *mut ClhNode) {
        self.nodes.push(node);
    }
}

impl Drop for NodePool {
    fn drop(&mut self) {
        if let Ok(mut spill) = SPILL.lock() {
            spill.extend(self.nodes.drain(..).map(|p| p as usize));
        }
    }
}

thread_local! {
    static POOL: std::cell::RefCell<NodePool> =
        const { std::cell::RefCell::new(NodePool { nodes: Vec::new() }) };
}

fn pool_acquire() -> *mut ClhNode {
    POOL.with(|p| p.borrow_mut().acquire())
}

fn pool_release(node: *mut ClhNode) {
    POOL.with(|p| p.borrow_mut().release(node));
}

/// A CLH queue spinlock, padded to one cache line.
///
/// # Example
///
/// ```
/// use gls_locks::{ClhLock, RawLock};
///
/// let lock = ClhLock::new();
/// lock.lock();
/// lock.unlock();
/// ```
#[derive(Debug)]
pub struct ClhLock {
    state: CachePadded<ClhState>,
}

#[derive(Debug)]
struct ClhState {
    /// Most recently enqueued node; never null (starts as an unlocked dummy).
    tail: AtomicPtr<ClhNode>,
    /// Node published by the current holder.
    owner_node: AtomicPtr<ClhNode>,
    /// Predecessor node the current holder spun on (recycled at unlock).
    owner_pred: AtomicPtr<ClhNode>,
    /// Holder + waiters, for [`QueueInformed`].
    queued: AtomicU64,
}

impl Default for ClhLock {
    fn default() -> Self {
        Self::new()
    }
}

impl ClhLock {
    /// Creates an unlocked CLH lock.
    pub fn new() -> Self {
        Self {
            state: CachePadded::new(ClhState {
                tail: AtomicPtr::new(ClhNode::new(false)),
                owner_node: AtomicPtr::new(ptr::null_mut()),
                owner_pred: AtomicPtr::new(ptr::null_mut()),
                queued: AtomicU64::new(0),
            }),
        }
    }
}

impl Drop for ClhLock {
    fn drop(&mut self) {
        // When the lock is free and uncontended, the only live node is the
        // one `tail` points to; reclaim it. If the lock is dropped while held
        // (a usage error), the node is intentionally leaked rather than risk
        // a double free.
        if self.state.queued.load(Ordering::Relaxed) == 0 {
            let tail = self.state.tail.load(Ordering::Relaxed);
            if !tail.is_null() {
                // SAFETY: no thread holds or waits for this lock (queued == 0
                // and we have `&mut self`), so the tail node is unreachable
                // by anyone else and was allocated by `ClhNode::new`.
                unsafe { drop(Box::from_raw(tail)) };
            }
        }
    }
}

impl RawLock for ClhLock {
    const NAME: &'static str = "CLH";

    #[inline]
    fn lock(&self) {
        self.state.queued.fetch_add(1, Ordering::Relaxed);
        let node = pool_acquire();
        // SAFETY: the node is exclusively ours until published by the swap.
        unsafe {
            (*node).locked.store(true, Ordering::Relaxed);
        }
        let pred = self.state.tail.swap(node, Ordering::AcqRel);
        // SAFETY: `pred` stays allocated for the process lifetime (pool /
        // spill discipline) and only we spin on it; it is recycled only by us
        // at unlock time.
        unsafe {
            let mut wait = SpinWait::new();
            while (*pred).locked.load(Ordering::Acquire) {
                wait.spin();
            }
        }
        self.state.owner_node.store(node, Ordering::Relaxed);
        self.state.owner_pred.store(pred, Ordering::Relaxed);
    }

    #[inline]
    fn unlock(&self) {
        let node = self
            .state
            .owner_node
            .swap(ptr::null_mut(), Ordering::Relaxed);
        if node.is_null() {
            // Releasing a free lock: tolerated; GLS debug mode reports it.
            return;
        }
        let pred = self
            .state
            .owner_pred
            .swap(ptr::null_mut(), Ordering::Relaxed);
        if !pred.is_null() {
            // Our predecessor's node is no longer referenced by anyone.
            pool_release(pred);
        }
        // SAFETY: `node` was published by us and is still allocated; clearing
        // `locked` hands the lock to our successor (or marks the queue idle).
        unsafe {
            (*node).locked.store(false, Ordering::Release);
        }
        self.state.queued.fetch_sub(1, Ordering::Relaxed);
    }

    fn is_locked(&self) -> bool {
        let tail = self.state.tail.load(Ordering::Relaxed);
        // SAFETY: nodes are never deallocated while the process runs.
        unsafe { !tail.is_null() && (*tail).locked.load(Ordering::Relaxed) }
    }
}

impl RawTryLock for ClhLock {
    #[inline]
    fn try_lock(&self) -> bool {
        let tail = self.state.tail.load(Ordering::Acquire);
        // SAFETY: node memory is never freed, so this read is always of valid
        // memory; at worst it is stale, in which case the CAS below fails.
        if unsafe { (*tail).locked.load(Ordering::Relaxed) } {
            return false;
        }
        let node = pool_acquire();
        // SAFETY: exclusively ours until published.
        unsafe {
            (*node).locked.store(true, Ordering::Relaxed);
        }
        match self
            .state
            .tail
            .compare_exchange(tail, node, Ordering::AcqRel, Ordering::Relaxed)
        {
            Ok(pred) => {
                // The predecessor was observed unlocked before the CAS. In the
                // (pathological, ABA-style) case where the same node pointer
                // was recycled and re-armed in between, we are already linked
                // into the queue and cannot back out; wait for the
                // predecessor, which is bounded by one critical section.
                // SAFETY: `pred` stays allocated for the process lifetime.
                unsafe {
                    let mut wait = SpinWait::new();
                    while (*pred).locked.load(Ordering::Acquire) {
                        wait.spin();
                    }
                }
                self.state.owner_node.store(node, Ordering::Relaxed);
                self.state.owner_pred.store(pred, Ordering::Relaxed);
                self.state.queued.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                pool_release(node);
                false
            }
        }
    }
}

impl QueueInformed for ClhLock {
    fn queue_length(&self) -> u64 {
        self.state.queued.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_unlock_single_thread() {
        let lock = ClhLock::new();
        assert!(!lock.is_locked());
        lock.lock();
        assert!(lock.is_locked());
        lock.unlock();
        assert!(!lock.is_locked());
    }

    #[test]
    fn repeated_acquisition_recycles_nodes() {
        let lock = ClhLock::new();
        for _ in 0..10_000 {
            lock.lock();
            lock.unlock();
        }
        assert!(!lock.is_locked());
        assert_eq!(lock.queue_length(), 0);
    }

    #[test]
    fn try_lock_semantics() {
        let lock = ClhLock::new();
        assert!(lock.try_lock());
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
    }

    #[test]
    fn unlock_when_free_is_tolerated() {
        let lock = ClhLock::new();
        lock.unlock();
        lock.lock();
        lock.unlock();
    }

    #[test]
    fn provides_mutual_exclusion() {
        crate::test_support::check_mutual_exclusion::<ClhLock>(8, 20_000);
    }

    #[test]
    fn queue_length_counts_waiters() {
        let lock = Arc::new(ClhLock::new());
        lock.lock();
        let l = Arc::clone(&lock);
        let waiter = std::thread::spawn(move || {
            l.lock();
            l.unlock();
        });
        while lock.queue_length() < 2 {
            std::hint::spin_loop();
        }
        assert_eq!(lock.queue_length(), 2);
        lock.unlock();
        waiter.join().unwrap();
        assert_eq!(lock.queue_length(), 0);
    }

    #[test]
    fn drop_while_free_does_not_crash() {
        let lock = ClhLock::new();
        lock.lock();
        lock.unlock();
        drop(lock);
    }

    #[test]
    fn mixed_try_and_blocking_acquisitions() {
        let lock = Arc::new(ClhLock::new());
        let hits = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let lock = Arc::clone(&lock);
                let hits = Arc::clone(&hits);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        if i % 2 == 0 {
                            lock.lock();
                            hits.fetch_add(1, Ordering::Relaxed);
                            lock.unlock();
                        } else if lock.try_lock() {
                            hits.fetch_add(1, Ordering::Relaxed);
                            lock.unlock();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(hits.load(Ordering::Relaxed) >= 8_000);
        assert!(!lock.is_locked());
    }
}
