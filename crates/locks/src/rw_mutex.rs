//! Blocking reader-writer lock for multiprogrammed environments.
//!
//! The rw counterpart of [`MutexLock`](crate::MutexLock): when the machine
//! is oversubscribed, spinning readers and writers would burn hardware
//! contexts the lock holder needs, so waiters must release them to the OS.
//! This lock parks waiters on condition variables; like the TTAS rwlock it
//! is writer-preferring — arriving readers wait behind any announced writer,
//! so writers cannot starve behind a reader stream.

// This lock is deliberately *built on* std `Mutex`/`Condvar` — it is the
// paper's baseline blocking rwlock, unported to the gls_sync facade and
// excluded from model exploration (see clippy.toml).
#![allow(clippy::disallowed_types)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use crate::cache_padded::CachePadded;
use crate::raw::{QueueInformed, RawLock, RawRwLock, RawTryLock};

#[derive(Debug, Default)]
struct RwInner {
    /// Active readers.
    readers: u32,
    /// Whether a writer holds the lock.
    writer: bool,
    /// Writers parked (or about to park) on `can_write`.
    writers_waiting: u32,
}

#[derive(Debug, Default)]
struct RwMutexState {
    inner: Mutex<RwInner>,
    /// Readers park here while a writer holds or awaits the lock.
    can_read: Condvar,
    /// Writers park here while the lock is held at all.
    can_write: Condvar,
    /// Holders + waiters, for [`QueueInformed`].
    queued: AtomicU64,
}

/// A blocking (parking) reader-writer lock.
///
/// # Example
///
/// ```
/// use gls_locks::{RawRwLock, RwMutexLock};
///
/// let lock = RwMutexLock::new();
/// lock.read_lock();
/// assert!(!lock.try_write_lock());
/// lock.read_unlock();
/// lock.write_lock();
/// lock.write_unlock();
/// ```
#[derive(Debug, Default)]
pub struct RwMutexLock {
    state: CachePadded<RwMutexState>,
}

impl RwMutexLock {
    /// Creates an unlocked rw mutex.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a writer currently holds the lock (racy; diagnostics only).
    pub fn is_write_locked(&self) -> bool {
        self.state
            .inner
            .lock()
            .map(|g| g.writer)
            .unwrap_or_default()
    }

    /// Number of readers currently holding the lock (racy; diagnostics only).
    pub fn reader_count(&self) -> u32 {
        self.state
            .inner
            .lock()
            .map(|g| g.readers)
            .unwrap_or_default()
    }

    fn guard(&self) -> std::sync::MutexGuard<'_, RwInner> {
        self.state.inner.lock().expect("rw parking lot poisoned")
    }
}

impl RawRwLock for RwMutexLock {
    fn read_lock(&self) {
        self.state.queued.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.guard();
        // Writer preference: park behind waiting writers, not only holders.
        while inner.writer || inner.writers_waiting > 0 {
            inner = self
                .state
                .can_read
                .wait(inner)
                .expect("rw parking lot poisoned");
        }
        inner.readers += 1;
    }

    fn try_read_lock(&self) -> bool {
        let Ok(mut inner) = self.state.inner.try_lock() else {
            return false;
        };
        if inner.writer || inner.writers_waiting > 0 {
            return false;
        }
        inner.readers += 1;
        self.state.queued.fetch_add(1, Ordering::Relaxed);
        true
    }

    fn read_unlock(&self) {
        let mut inner = self.guard();
        debug_assert!(inner.readers > 0, "read_unlock without a reader");
        inner.readers = inner.readers.saturating_sub(1);
        let wake_writer = inner.readers == 0 && inner.writers_waiting > 0;
        drop(inner);
        if wake_writer {
            self.state.can_write.notify_one();
        }
        self.state.queued.fetch_sub(1, Ordering::Relaxed);
    }
}

impl RawLock for RwMutexLock {
    const NAME: &'static str = "RW-MUTEX";

    /// Acquires exclusive (write) access, parking until all holders leave.
    fn lock(&self) {
        self.state.queued.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.guard();
        inner.writers_waiting += 1;
        while inner.writer || inner.readers > 0 {
            inner = self
                .state
                .can_write
                .wait(inner)
                .expect("rw parking lot poisoned");
        }
        inner.writers_waiting -= 1;
        inner.writer = true;
    }

    fn unlock(&self) {
        let mut inner = self.guard();
        debug_assert!(inner.writer, "write unlock without a writer");
        inner.writer = false;
        let writers_waiting = inner.writers_waiting > 0;
        drop(inner);
        if writers_waiting {
            self.state.can_write.notify_one();
        } else {
            self.state.can_read.notify_all();
        }
        self.state.queued.fetch_sub(1, Ordering::Relaxed);
    }

    fn is_locked(&self) -> bool {
        self.state
            .inner
            .lock()
            .map(|g| g.writer || g.readers > 0)
            .unwrap_or_default()
    }
}

impl RawTryLock for RwMutexLock {
    fn try_lock(&self) -> bool {
        let Ok(mut inner) = self.state.inner.try_lock() else {
            return false;
        };
        if inner.writer || inner.readers > 0 {
            return false;
        }
        inner.writer = true;
        self.state.queued.fetch_add(1, Ordering::Relaxed);
        true
    }
}

impl QueueInformed for RwMutexLock {
    fn queue_length(&self) -> u64 {
        self.state.queued.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
// Raw std sync and wall-clock sleeps are fine in stress tests: they pace
// real threads, not modeled ones (see clippy.toml).
#[allow(clippy::disallowed_types, clippy::disallowed_methods)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn read_write_roundtrip() {
        let lock = RwMutexLock::new();
        lock.read_lock();
        lock.read_lock();
        assert_eq!(lock.reader_count(), 2);
        assert!(!lock.try_write_lock());
        lock.read_unlock();
        lock.read_unlock();
        lock.write_lock();
        assert!(lock.is_write_locked());
        assert!(!lock.try_read_lock());
        lock.write_unlock();
        assert!(!lock.is_locked());
        assert_eq!(lock.queue_length(), 0);
    }

    #[test]
    fn parked_writer_is_woken_by_last_reader() {
        let lock = Arc::new(RwMutexLock::new());
        lock.read_lock();
        let writer = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                lock.write_lock();
                lock.write_unlock();
            })
        };
        // Give the writer time to park, then release the only read hold.
        std::thread::sleep(Duration::from_millis(50));
        lock.read_unlock();
        writer.join().unwrap();
        assert!(!lock.is_locked());
    }

    #[test]
    fn parked_readers_are_woken_by_writer() {
        let lock = Arc::new(RwMutexLock::new());
        lock.write_lock();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    lock.read_lock();
                    lock.read_unlock();
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        lock.write_unlock();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(lock.queue_length(), 0);
    }

    #[test]
    fn writer_completes_under_continuous_reader_churn() {
        let lock = Arc::new(RwMutexLock::new());
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        lock.read_lock();
                        lock.read_unlock();
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        lock.write_lock();
        lock.write_unlock();
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
    }

    #[test]
    fn readers_and_writers_interleave_consistently() {
        struct Shared(std::cell::UnsafeCell<(u64, u64)>);
        // SAFETY: the cell is only touched while holding the lock under
        // test; that exclusion is exactly what the test verifies.
        unsafe impl Sync for Shared {}
        let lock = Arc::new(RwMutexLock::new());
        let shared = Arc::new(Shared(std::cell::UnsafeCell::new((0, 0))));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        lock.write_lock();
                        // SAFETY: written while holding the write lock under test.
                        unsafe {
                            (*shared.0.get()).0 += 1;
                            (*shared.0.get()).1 += 1;
                        }
                        lock.write_unlock();
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        lock.read_lock();
                        // SAFETY: read under the read lock; writers are excluded.
                        let (a, b) = unsafe { *shared.0.get() };
                        assert_eq!(a, b, "reader overlapped a writer");
                        lock.read_unlock();
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        // SAFETY: all worker threads are joined; nothing races this read.
        assert_eq!(unsafe { (*shared.0.get()).0 }, 8_000);
    }
}
