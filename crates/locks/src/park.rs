//! The address-keyed parking lot: central wait queues for word-sized locks.
//!
//! The paper's blocking locks need a way to put waiters to sleep and wake
//! them on release. Embedding a `Mutex + Condvar` pair in every lock (as
//! [`MutexLock`](crate::MutexLock) does) makes each lock ~2 cache lines —
//! fine for a handful of hot locks, prohibitive for the address-keyed
//! middleware whose whole point is that *any* of millions of addresses can
//! be a lock. The parking lot inverts the layout, futex-style: lock state
//! shrinks to a single word, and all wait-queue state lives centrally in a
//! sharded hash table of buckets keyed by the lock's address. Threads that
//! must block **park** themselves in the bucket for their lock's address;
//! releasing threads **unpark** them from the same bucket.
//!
//! # Memory layout
//!
//! * One global table ([`ParkingLot::global`]) of [`BUCKETS`] cache-padded
//!   buckets, each a mutex-protected FIFO queue of waiters. Lock addresses
//!   hash onto buckets; distinct locks may share a bucket (waiters carry
//!   their address, so sharing only contends the bucket mutex).
//! * One parker (a `Mutex<bool>` + `Condvar` signal cell) per **thread**,
//!   lazily created and reused for every park on any address. Space is
//!   therefore O(threads + buckets), independent of the number of locks —
//!   which is what lets [`FutexLock`](crate::FutexLock) be one `AtomicU32`.
//!
//! # Fairness and ordering guarantees
//!
//! * Waiters are queued and woken in **FIFO order per address**:
//!   [`ParkingLot::unpark_one`] always wakes the longest-parked waiter, and
//!   [`ParkingLot::unpark_all`] wakes in arrival order.
//! * Parking is **not** admission order for the lock built on top: a woken
//!   waiter re-contends with arriving threads (barging), exactly like a
//!   futex-based mutex. Locks that need FIFO admission keep using the queue
//!   locks (ticket/MCS/CLH).
//! * The `validate` closure passed to [`ParkingLot::park`] runs under the
//!   bucket lock, and so do the callbacks of the unpark primitives: a lock
//!   implementation can therefore re-check its atomic word and update
//!   wake-related bits (e.g. clear a "has parked waiters" flag) atomically
//!   with respect to enqueueing, which is what closes the classic
//!   lost-wakeup races without a per-lock mutex.
//!
//! [`park_timeout`](ParkingLot::park) (via the `timeout` parameter),
//! [`unpark_requeue`](ParkingLot::unpark_requeue) (move waiters to another
//! address without waking them) and [`unpark_select`](ParkingLot::unpark_select)
//! (wake a caller-chosen subset, e.g. "first writer or else all readers")
//! round out the primitive set condition variables and reader-writer locks
//! are built from.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

use crate::cache_padded::CachePadded;

/// Number of buckets in the global parking lot (a power of two). 64 buckets
/// of one cache line each keep the whole table at 4 kB while making bucket
/// collisions between simultaneously-contended locks unlikely.
pub const BUCKETS: usize = 64;

/// Park token used by callers that do not need to distinguish waiters.
pub const DEFAULT_PARK_TOKEN: usize = 0;

/// Unpark token used by wakers that do not need to pass information.
pub const DEFAULT_UNPARK_TOKEN: usize = 0;

/// Outcome of a [`ParkingLot::park`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParkResult {
    /// The thread was woken by an unpark primitive; carries the waker's
    /// unpark token.
    Unparked(usize),
    /// The `validate` closure returned `false`; the thread never slept.
    Invalid,
    /// The timeout elapsed before any wake arrived.
    TimedOut,
}

impl ParkResult {
    /// Whether the thread was woken by an unpark (as opposed to timing out
    /// or failing validation).
    pub fn is_unparked(self) -> bool {
        matches!(self, ParkResult::Unparked(_))
    }
}

/// What an unpark primitive did, observed by its callback while the bucket
/// is still locked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UnparkResult {
    /// Number of waiters woken by this call.
    pub unparked: usize,
    /// Whether waiters for the same address remain parked after this call.
    pub have_more: bool,
}

/// What a requeue primitive did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequeueResult {
    /// Number of waiters woken (up to `max_unpark`).
    pub unparked: usize,
    /// Number of waiters moved to the target address without waking.
    pub requeued: usize,
}

/// The per-thread signal cell every park sleeps on. One exists per thread
/// (lazily, in a thread-local) and is reused across parks on any address.
#[derive(Debug, Default)]
struct Parker {
    state: Mutex<ParkerState>,
    condvar: Condvar,
    /// The address this parker is currently enqueued under; maintained under
    /// the owning bucket's lock (updated by requeue) so a timed-out thread
    /// can find the bucket it lives in *now*.
    addr: AtomicUsize,
}

#[derive(Debug, Default)]
struct ParkerState {
    signaled: bool,
    unpark_token: usize,
}

impl Parker {
    /// Resets the signal before enqueueing. The park/unpark protocol pairs
    /// every enqueue with exactly one consumed signal, so none can be
    /// pending here.
    fn prepare(&self, addr: usize) {
        let state = self.state.lock().expect("parker poisoned");
        debug_assert!(!state.signaled, "unconsumed unpark signal");
        drop(state);
        self.addr.store(addr, Ordering::Release);
    }

    /// Blocks until signaled; returns the unpark token.
    fn park(&self) -> usize {
        let mut state = self.state.lock().expect("parker poisoned");
        while !state.signaled {
            state = self.condvar.wait(state).expect("parker poisoned");
        }
        state.signaled = false;
        state.unpark_token
    }

    /// Blocks until signaled or until `timeout` elapses; `None` on timeout.
    fn park_timeout(&self, timeout: Duration) -> Option<usize> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("parker poisoned");
        while !state.signaled {
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .filter(|r| !r.is_zero())?;
            state = self
                .condvar
                .wait_timeout(state, remaining)
                .expect("parker poisoned")
                .0;
        }
        state.signaled = false;
        Some(state.unpark_token)
    }

    /// Signals the parked thread. Called after the bucket lock is released.
    fn unpark(&self, unpark_token: usize) {
        let mut state = self.state.lock().expect("parker poisoned");
        state.signaled = true;
        state.unpark_token = unpark_token;
        drop(state);
        self.condvar.notify_one();
    }
}

thread_local! {
    static PARKER: Arc<Parker> = Arc::new(Parker::default());
}

/// One parked thread: its lock address, the token it parked with, and the
/// signal cell to wake it through.
#[derive(Debug)]
struct Waiter {
    addr: usize,
    park_token: usize,
    parker: Arc<Parker>,
}

/// A wait bucket: a FIFO queue of parked threads whose lock addresses hash
/// here.
#[derive(Debug, Default)]
struct Bucket {
    queue: Mutex<Vec<Waiter>>,
}

/// The sharded table of wait buckets. Use [`ParkingLot::global`] in
/// production; dedicated instances exist for tests.
#[derive(Debug)]
pub struct ParkingLot {
    buckets: Box<[CachePadded<Bucket>]>,
}

impl Default for ParkingLot {
    fn default() -> Self {
        Self::with_buckets(BUCKETS)
    }
}

impl ParkingLot {
    /// Creates a lot with `buckets` wait buckets.
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is not a power of two.
    pub fn with_buckets(buckets: usize) -> Self {
        assert!(
            buckets.is_power_of_two(),
            "bucket count must be a power of two"
        );
        Self {
            buckets: (0..buckets).map(|_| CachePadded::default()).collect(),
        }
    }

    /// The process-wide parking lot shared by every futex-style lock.
    pub fn global() -> &'static ParkingLot {
        static GLOBAL: OnceLock<ParkingLot> = OnceLock::new();
        GLOBAL.get_or_init(ParkingLot::default)
    }

    fn bucket_of(&self, addr: usize) -> &Bucket {
        // Fibonacci hashing spreads the (cache-line-aligned, low-entropy)
        // lock addresses over the buckets via the product's high bits.
        let hash = addr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let bits = self.buckets.len().trailing_zeros();
        let index = if bits == 0 {
            0
        } else {
            hash >> (usize::BITS - bits)
        };
        &self.buckets[index]
    }

    fn queue_of(&self, addr: usize) -> MutexGuard<'_, Vec<Waiter>> {
        self.bucket_of(addr)
            .queue
            .lock()
            .expect("parking-lot bucket poisoned")
    }

    /// Parks the calling thread on `addr` until an unpark primitive wakes it
    /// or `timeout` (if any) elapses.
    ///
    /// `validate` runs under the bucket lock *before* enqueueing: return
    /// `false` to abort the park (the lock state changed and blocking is no
    /// longer appropriate); no sleep happens and [`ParkResult::Invalid`] is
    /// returned. `before_sleep` runs after the thread is enqueued and the
    /// bucket lock is released, but before the thread blocks — this is where
    /// a condition variable releases its mutex, guaranteeing any notifier
    /// that acquires that mutex afterwards finds the waiter already queued.
    ///
    /// `park_token` is visible to [`ParkingLot::unpark_select`] filters
    /// (e.g. to distinguish reader from writer waiters).
    pub fn park(
        &self,
        addr: usize,
        park_token: usize,
        validate: impl FnOnce() -> bool,
        before_sleep: impl FnOnce(),
        timeout: Option<Duration>,
    ) -> ParkResult {
        let parker = PARKER.with(Arc::clone);
        {
            let mut queue = self.queue_of(addr);
            if !validate() {
                return ParkResult::Invalid;
            }
            parker.prepare(addr);
            queue.push(Waiter {
                addr,
                park_token,
                parker: Arc::clone(&parker),
            });
        }
        before_sleep();
        match timeout {
            None => ParkResult::Unparked(parker.park()),
            Some(timeout) => match parker.park_timeout(timeout) {
                Some(token) => ParkResult::Unparked(token),
                None => self.cancel_park(&parker),
            },
        }
    }

    /// Removes a timed-out waiter from whichever bucket it lives in now
    /// (requeues may have moved it), or consumes the in-flight wake if an
    /// unparker got to it first.
    fn cancel_park(&self, parker: &Arc<Parker>) -> ParkResult {
        loop {
            let addr = parker.addr.load(Ordering::Acquire);
            let mut queue = self.queue_of(addr);
            if let Some(index) = queue
                .iter()
                .position(|w| Arc::ptr_eq(&w.parker, parker) && w.addr == addr)
            {
                queue.remove(index);
                return ParkResult::TimedOut;
            }
            // Not in the bucket we expected. Either a requeue moved us (the
            // recorded address changed: retry against the new bucket) or an
            // unparker already dequeued us (the address is unchanged: the
            // wake signal is in flight, wait for it).
            if parker.addr.load(Ordering::Acquire) == addr {
                drop(queue);
                return ParkResult::Unparked(parker.park());
            }
        }
    }

    /// Wakes the longest-parked waiter on `addr`, if any. `callback` runs
    /// while the bucket is still locked, after the waiter was dequeued —
    /// update the lock word there (e.g. clear a parked bit when
    /// [`UnparkResult::have_more`] is `false`) to stay atomic with respect
    /// to concurrent `park` validation.
    pub fn unpark_one(
        &self,
        addr: usize,
        unpark_token: usize,
        callback: impl FnOnce(&UnparkResult),
    ) -> UnparkResult {
        // Allocation-free: this runs on every contended unlock, while
        // holding a bucket lock other colliding locks contend on.
        let woken: Option<Arc<Parker>>;
        let result;
        {
            let mut queue = self.queue_of(addr);
            woken = queue
                .iter()
                .position(|w| w.addr == addr)
                .map(|index| queue.remove(index).parker);
            result = UnparkResult {
                unparked: usize::from(woken.is_some()),
                have_more: queue.iter().any(|w| w.addr == addr),
            };
            callback(&result);
        }
        if let Some(parker) = woken {
            parker.unpark(unpark_token);
        }
        result
    }

    /// Wakes every waiter parked on `addr`, in FIFO order. Returns how many
    /// were woken.
    pub fn unpark_all(&self, addr: usize, unpark_token: usize) -> usize {
        let mut woken: Vec<Arc<Parker>> = Vec::new();
        {
            let mut queue = self.queue_of(addr);
            queue.retain(|w| {
                if w.addr == addr {
                    woken.push(Arc::clone(&w.parker));
                    false
                } else {
                    true
                }
            });
        }
        for parker in &woken {
            parker.unpark(unpark_token);
        }
        woken.len()
    }

    /// Wakes the longest-parked waiter that parked with `preferred_token`,
    /// or — when none did — every waiter on `addr`, in FIFO order.
    ///
    /// This is the writer-preferring rw release policy ("first parked
    /// writer, else all readers") as a single primitive: the decision, the
    /// dequeues and the `callback` all happen under one bucket lock, atomic
    /// with park validation, and the bucket critical section allocates at
    /// most the woken list (nothing at all on the single-waiter path).
    pub fn unpark_preferred(
        &self,
        addr: usize,
        preferred_token: usize,
        unpark_token: usize,
        callback: impl FnOnce(&UnparkResult),
    ) -> UnparkResult {
        let mut woken: Vec<Arc<Parker>> = Vec::new();
        let mut preferred: Option<Arc<Parker>> = None;
        let result;
        {
            let mut queue = self.queue_of(addr);
            if let Some(index) = queue
                .iter()
                .position(|w| w.addr == addr && w.park_token == preferred_token)
            {
                preferred = Some(queue.remove(index).parker);
            } else {
                queue.retain(|w| {
                    if w.addr == addr {
                        woken.push(Arc::clone(&w.parker));
                        false
                    } else {
                        true
                    }
                });
            }
            result = UnparkResult {
                unparked: usize::from(preferred.is_some()) + woken.len(),
                have_more: queue.iter().any(|w| w.addr == addr),
            };
            callback(&result);
        }
        if let Some(parker) = preferred {
            parker.unpark(unpark_token);
        }
        for parker in &woken {
            parker.unpark(unpark_token);
        }
        result
    }

    /// Wakes a caller-selected subset of the waiters parked on `addr`.
    ///
    /// `select` receives the park tokens of every waiter on `addr` in FIFO
    /// order and returns the indices to wake (out-of-range indices are
    /// ignored; wakeups preserve FIFO order regardless of the order of the
    /// returned indices). Both `select` and `callback` run under the bucket
    /// lock; the actual wakeups happen after it is released.
    ///
    /// This is the primitive behind writer-preferring rw wakeup ("wake the
    /// first parked writer, else all readers") where the decision must be
    /// atomic with parked-bit maintenance — two separate `unpark_one` /
    /// `unpark_all` calls would race with new waiters parking in between.
    pub fn unpark_select(
        &self,
        addr: usize,
        select: impl FnOnce(&[usize]) -> Vec<usize>,
        unpark_token: usize,
        callback: impl FnOnce(&UnparkResult),
    ) -> UnparkResult {
        let mut woken: Vec<Arc<Parker>> = Vec::new();
        let result;
        {
            let mut queue = self.queue_of(addr);
            let tokens: Vec<usize> = queue
                .iter()
                .filter(|w| w.addr == addr)
                .map(|w| w.park_token)
                .collect();
            let mut chosen = select(&tokens);
            chosen.sort_unstable();
            chosen.dedup();
            // Walk the queue once, mapping per-address positions back to
            // queue positions; remove back-to-front to keep indices stable.
            let mut matching = 0usize;
            let mut remove: Vec<usize> = Vec::with_capacity(chosen.len());
            for (queue_index, waiter) in queue.iter().enumerate() {
                if waiter.addr != addr {
                    continue;
                }
                if chosen.binary_search(&matching).is_ok() {
                    remove.push(queue_index);
                }
                matching += 1;
            }
            for &queue_index in remove.iter().rev() {
                woken.push(queue.remove(queue_index).parker);
            }
            woken.reverse(); // back-to-front removal reversed FIFO order
            result = UnparkResult {
                unparked: woken.len(),
                have_more: queue.iter().any(|w| w.addr == addr),
            };
            callback(&result);
        }
        for parker in woken {
            parker.unpark(unpark_token);
        }
        result
    }

    /// Wakes up to `max_unpark` waiters of `from` and moves up to
    /// `max_requeue` of the remaining ones onto `to` without waking them
    /// (they wake on a future unpark of `to`, FIFO behind its existing
    /// waiters). `callback` runs while both buckets are locked.
    pub fn unpark_requeue(
        &self,
        from: usize,
        to: usize,
        max_unpark: usize,
        max_requeue: usize,
        unpark_token: usize,
        callback: impl FnOnce(&RequeueResult),
    ) -> RequeueResult {
        let mut woken: Vec<Arc<Parker>> = Vec::new();
        let result;
        {
            let (mut from_queue, mut to_queue) = self.lock_pair(from, to);
            let mut moved: Vec<Waiter> = Vec::new();
            let mut unparked = 0usize;
            let mut requeued = 0usize;
            let mut index = 0;
            while index < from_queue.len() {
                if from_queue[index].addr != from {
                    index += 1;
                    continue;
                }
                if unparked < max_unpark {
                    woken.push(from_queue.remove(index).parker);
                    unparked += 1;
                } else if requeued < max_requeue {
                    let mut waiter = from_queue.remove(index);
                    waiter.addr = to;
                    // Keep the parker's recorded address in sync so a timed
                    // -out waiter searches the right bucket (both buckets
                    // are locked here, so the update is atomic to it).
                    waiter.parker.addr.store(to, Ordering::Release);
                    moved.push(waiter);
                    requeued += 1;
                } else {
                    break;
                }
            }
            match &mut to_queue {
                Some(queue) => queue.extend(moved),
                None => from_queue.extend(moved),
            }
            result = RequeueResult { unparked, requeued };
            callback(&result);
        }
        for parker in woken {
            parker.unpark(unpark_token);
        }
        result
    }

    /// Locks the buckets of `from` and `to` in a deadlock-free order.
    /// Returns `(from_queue, Some(to_queue))`, or `(queue, None)` when both
    /// addresses share a bucket.
    #[allow(clippy::type_complexity)]
    fn lock_pair(
        &self,
        from: usize,
        to: usize,
    ) -> (
        MutexGuard<'_, Vec<Waiter>>,
        Option<MutexGuard<'_, Vec<Waiter>>>,
    ) {
        let from_bucket = self.bucket_of(from) as *const Bucket;
        let to_bucket = self.bucket_of(to) as *const Bucket;
        if std::ptr::eq(from_bucket, to_bucket) {
            (self.queue_of(from), None)
        } else if (from_bucket as usize) < (to_bucket as usize) {
            let first = self.queue_of(from);
            let second = self.queue_of(to);
            (first, Some(second))
        } else {
            let second = self.queue_of(to);
            let first = self.queue_of(from);
            (first, Some(second))
        }
    }

    /// Number of threads currently parked on `addr` (racy; diagnostics and
    /// queue-length reporting).
    pub fn parked_count(&self, addr: usize) -> usize {
        self.queue_of(addr)
            .iter()
            .filter(|w| w.addr == addr)
            .count()
    }

    /// Total number of threads parked in this lot, over all addresses
    /// (racy; tests and diagnostics).
    pub fn total_parked(&self) -> usize {
        self.buckets
            .iter()
            .map(|b| b.queue.lock().map(|q| q.len()).unwrap_or(0))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    /// Spawns `n` threads that park on `addr` and records the order in which
    /// they wake. Returns once all are enqueued.
    fn park_squad(
        lot: &Arc<ParkingLot>,
        addr: usize,
        n: usize,
        wake_order: &Arc<Mutex<Vec<usize>>>,
    ) -> Vec<std::thread::JoinHandle<ParkResult>> {
        let enqueue_barrier = Arc::new(Barrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let lot = Arc::clone(lot);
                let order = Arc::clone(wake_order);
                let barrier = Arc::clone(&enqueue_barrier);
                std::thread::spawn(move || {
                    // Serialize enqueue order by index so FIFO is testable.
                    loop {
                        if lot.parked_count(addr) == i {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    let result = lot.park(
                        addr,
                        i, // park token = arrival index
                        || true,
                        || {
                            barrier.wait();
                        },
                        None,
                    );
                    order.lock().unwrap().push(i);
                    result
                })
            })
            .collect();
        while lot.parked_count(addr) < n {
            std::thread::yield_now();
        }
        handles
    }

    #[test]
    fn unpark_one_wakes_in_fifo_order() {
        let lot = Arc::new(ParkingLot::with_buckets(4));
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles = park_squad(&lot, 0x100, 3, &order);
        for _ in 0..3 {
            let before = order.lock().unwrap().len();
            let result = lot.unpark_one(0x100, DEFAULT_UNPARK_TOKEN, |_| {});
            assert_eq!(result.unparked, 1);
            while order.lock().unwrap().len() == before {
                std::thread::yield_now();
            }
        }
        for h in handles {
            assert!(h.join().unwrap().is_unparked());
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2], "FIFO wake order");
        assert_eq!(lot.total_parked(), 0);
    }

    #[test]
    fn unpark_all_wakes_everyone_and_reports_counts() {
        let lot = Arc::new(ParkingLot::with_buckets(4));
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles = park_squad(&lot, 0x200, 4, &order);
        assert_eq!(lot.parked_count(0x200), 4);
        assert_eq!(lot.unpark_all(0x200, 7), 4);
        for h in handles {
            assert_eq!(h.join().unwrap(), ParkResult::Unparked(7));
        }
        assert_eq!(lot.parked_count(0x200), 0);
    }

    #[test]
    fn validate_failure_aborts_the_park() {
        let lot = ParkingLot::with_buckets(4);
        let result = lot.park(0x300, DEFAULT_PARK_TOKEN, || false, || {}, None);
        assert_eq!(result, ParkResult::Invalid);
        assert_eq!(lot.total_parked(), 0);
    }

    #[test]
    fn park_timeout_expires_and_cleans_the_bucket() {
        let lot = ParkingLot::with_buckets(4);
        let start = Instant::now();
        let result = lot.park(
            0x400,
            DEFAULT_PARK_TOKEN,
            || true,
            || {},
            Some(Duration::from_millis(40)),
        );
        assert_eq!(result, ParkResult::TimedOut);
        assert!(start.elapsed() >= Duration::from_millis(40));
        assert_eq!(lot.total_parked(), 0, "timed-out waiter must dequeue");
    }

    #[test]
    fn unpark_token_reaches_the_parked_thread() {
        let lot = Arc::new(ParkingLot::with_buckets(4));
        let handle = {
            let lot = Arc::clone(&lot);
            std::thread::spawn(move || lot.park(0x500, DEFAULT_PARK_TOKEN, || true, || {}, None))
        };
        while lot.parked_count(0x500) == 0 {
            std::thread::yield_now();
        }
        lot.unpark_one(0x500, 42, |result| {
            assert_eq!(result.unparked, 1);
            assert!(!result.have_more);
        });
        assert_eq!(handle.join().unwrap(), ParkResult::Unparked(42));
    }

    #[test]
    fn requeue_moves_waiters_to_the_target_address() {
        let lot = Arc::new(ParkingLot::with_buckets(4));
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles = park_squad(&lot, 0x600, 3, &order);
        // Wake one, requeue the other two onto 0x700.
        let result = lot.unpark_requeue(0x600, 0x700, 1, usize::MAX, DEFAULT_UNPARK_TOKEN, |r| {
            assert_eq!(r.unparked, 1);
            assert_eq!(r.requeued, 2);
        });
        assert_eq!(result.unparked, 1);
        assert_eq!(result.requeued, 2);
        assert_eq!(lot.parked_count(0x600), 0);
        assert_eq!(lot.parked_count(0x700), 2);
        // The waiter woken by the requeue was the longest-parked one.
        while order.lock().unwrap().is_empty() {
            std::thread::yield_now();
        }
        assert_eq!(*order.lock().unwrap(), vec![0]);
        // Unparks on the original address find nobody.
        assert_eq!(lot.unpark_all(0x600, DEFAULT_UNPARK_TOKEN), 0);
        // The requeued waiters wake on the target address.
        assert_eq!(lot.unpark_all(0x700, DEFAULT_UNPARK_TOKEN), 2);
        for h in handles {
            assert!(h.join().unwrap().is_unparked());
        }
        let mut woken = order.lock().unwrap().clone();
        woken.sort_unstable();
        assert_eq!(woken, vec![0, 1, 2]);
    }

    #[test]
    fn timed_park_survives_a_requeue() {
        // A waiter parked with a timeout is requeued to another address and
        // then times out there: it must remove itself from the bucket it
        // lives in *now*, not the one it parked on.
        let lot = Arc::new(ParkingLot::with_buckets(4));
        let handle = {
            let lot = Arc::clone(&lot);
            std::thread::spawn(move || {
                lot.park(
                    0x800,
                    DEFAULT_PARK_TOKEN,
                    || true,
                    || {},
                    Some(Duration::from_millis(80)),
                )
            })
        };
        while lot.parked_count(0x800) == 0 {
            std::thread::yield_now();
        }
        lot.unpark_requeue(0x800, 0x900, 0, usize::MAX, DEFAULT_UNPARK_TOKEN, |_| {});
        assert_eq!(lot.parked_count(0x900), 1);
        assert_eq!(handle.join().unwrap(), ParkResult::TimedOut);
        assert_eq!(lot.total_parked(), 0);
    }

    #[test]
    fn select_can_prefer_a_tagged_waiter() {
        // Three waiters with tokens [0, 1, 0]; the selector picks the first
        // waiter with token 1 — the rw "first parked writer" policy.
        let lot = Arc::new(ParkingLot::with_buckets(4));
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles = park_squad(&lot, 0xA00, 3, &order);
        let result = lot.unpark_select(
            0xA00,
            |tokens| {
                assert_eq!(tokens, &[0, 1, 2]);
                vec![1]
            },
            DEFAULT_UNPARK_TOKEN,
            |r| {
                assert_eq!(r.unparked, 1);
                assert!(r.have_more);
            },
        );
        assert_eq!(result.unparked, 1);
        while order.lock().unwrap().is_empty() {
            std::thread::yield_now();
        }
        assert_eq!(*order.lock().unwrap(), vec![1], "the tagged waiter woke");
        assert_eq!(lot.unpark_all(0xA00, DEFAULT_UNPARK_TOKEN), 2);
        for h in handles {
            assert!(h.join().unwrap().is_unparked());
        }
    }

    #[test]
    fn unpark_preferred_wakes_tagged_waiter_else_everyone() {
        // Tokens [0, 1, 0]: preferring token 1 wakes only the middle
        // waiter; a second call (no tagged waiter left) wakes the rest.
        let lot = Arc::new(ParkingLot::with_buckets(4));
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles = park_squad(&lot, 0xB00, 3, &order);
        let result = lot.unpark_preferred(0xB00, 1, DEFAULT_UNPARK_TOKEN, |r| {
            assert_eq!(r.unparked, 1);
            assert!(r.have_more);
        });
        assert_eq!(result.unparked, 1);
        while order.lock().unwrap().is_empty() {
            std::thread::yield_now();
        }
        assert_eq!(*order.lock().unwrap(), vec![1], "the tagged waiter woke");
        let rest = lot.unpark_preferred(0xB00, 1, DEFAULT_UNPARK_TOKEN, |r| {
            assert_eq!(r.unparked, 2);
            assert!(!r.have_more);
        });
        assert_eq!(rest.unparked, 2);
        for h in handles {
            assert!(h.join().unwrap().is_unparked());
        }
        assert_eq!(lot.total_parked(), 0);
    }

    #[test]
    fn distinct_addresses_sharing_a_bucket_stay_separate() {
        // With a single bucket every address collides; unparks must still
        // only wake waiters of the matching address.
        let lot = Arc::new(ParkingLot::with_buckets(1));
        let woken_a = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = [(0x10usize, &woken_a), (0x20usize, &woken_a)]
            .into_iter()
            .enumerate()
            .map(|(i, (addr, counter))| {
                let lot = Arc::clone(&lot);
                let counter = Arc::clone(counter);
                std::thread::spawn(move || {
                    let r = lot.park(addr, DEFAULT_PARK_TOKEN, || true, || {}, None);
                    if i == 0 {
                        counter.fetch_add(1, Ordering::SeqCst);
                    }
                    r
                })
            })
            .collect();
        while lot.total_parked() < 2 {
            std::thread::yield_now();
        }
        assert_eq!(lot.parked_count(0x10), 1);
        assert_eq!(lot.parked_count(0x20), 1);
        assert_eq!(lot.unpark_all(0x10, DEFAULT_UNPARK_TOKEN), 1);
        while woken_a.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
        assert_eq!(lot.parked_count(0x20), 1, "other address undisturbed");
        assert_eq!(lot.unpark_all(0x20, DEFAULT_UNPARK_TOKEN), 1);
        for h in handles {
            assert!(h.join().unwrap().is_unparked());
        }
    }

    #[test]
    fn global_lot_is_a_singleton() {
        assert!(std::ptr::eq(ParkingLot::global(), ParkingLot::global()));
    }
}
