//! The address-keyed parking lot: central wait queues for word-sized locks.
//!
//! The paper's blocking locks need a way to put waiters to sleep and wake
//! them on release. Embedding a `Mutex + Condvar` pair in every lock (as
//! [`MutexLock`](crate::MutexLock) does) makes each lock ~2 cache lines —
//! fine for a handful of hot locks, prohibitive for the address-keyed
//! middleware whose whole point is that *any* of millions of addresses can
//! be a lock. The parking lot inverts the layout, futex-style: lock state
//! shrinks to a single word, and all wait-queue state lives centrally in a
//! sharded hash table of buckets keyed by the lock's address. Threads that
//! must block **park** themselves in the bucket for their lock's address;
//! releasing threads **unpark** them from the same bucket.
//!
//! # Memory layout
//!
//! * One global table ([`ParkingLot::global`]) of [`BUCKETS`] cache-padded
//!   buckets, each a mutex-protected FIFO queue of waiters. Lock addresses
//!   hash onto buckets; distinct locks may share a bucket (waiters carry
//!   their address, so sharing only contends the bucket mutex).
//! * One parker (a `Mutex<bool>` + `Condvar` signal cell) per **thread**,
//!   lazily created and reused for every park on any address. Space is
//!   therefore O(threads + buckets), independent of the number of locks —
//!   which is what lets [`FutexLock`](crate::FutexLock) be one `AtomicU32`.
//!
//! # Fairness and ordering guarantees
//!
//! * Waiters are queued and woken in **FIFO order per address**:
//!   [`ParkingLot::unpark_one`] always wakes the longest-parked waiter, and
//!   [`ParkingLot::unpark_all`] wakes in arrival order.
//! * Parking is **not** admission order for the lock built on top: a woken
//!   waiter re-contends with arriving threads (barging), exactly like a
//!   futex-based mutex. Locks that need FIFO admission keep using the queue
//!   locks (ticket/MCS/CLH).
//! * The `validate` closure passed to [`ParkingLot::park`] runs under the
//!   bucket lock, and so do the callbacks of the unpark primitives: a lock
//!   implementation can therefore re-check its atomic word and update
//!   wake-related bits (e.g. clear a "has parked waiters" flag) atomically
//!   with respect to enqueueing, which is what closes the classic
//!   lost-wakeup races without a per-lock mutex.
//!
//! [`park_timeout`](ParkingLot::park) (via the `timeout` parameter),
//! [`unpark_requeue`](ParkingLot::unpark_requeue) (move waiters to another
//! address without waking them) and [`unpark_select`](ParkingLot::unpark_select)
//! (wake a caller-chosen subset, e.g. "first writer or else all readers")
//! round out the primitive set condition variables and reader-writer locks
//! are built from.
//!
//! # Growth
//!
//! The bucket table **grows** — CLHT-style, off the hot path — when the
//! number of parked waiters crosses [`GROW_LOAD_FACTOR`] per bucket: a
//! parking (already-slow) thread builds a doubled table, locks every old
//! bucket, moves the waiters over (per-address FIFO order is preserved:
//! all waiters of one address live in one bucket and are appended in
//! order), publishes the new table and retires the old one. Every bucket
//! acquisition re-checks the published table pointer after locking, so an
//! operation that raced the swap simply retries against the new table.
//! Old tables are retained until the lot is dropped (doubling keeps the
//! total retained memory below one current-table size), so references to
//! buckets never dangle. Unpark and timeout paths never grow.

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use gls_sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use gls_sync::sync::{Condvar, Mutex, MutexGuard};

use crate::cache_padded::CachePadded;

/// Initial number of buckets in the global parking lot (a power of two).
/// 64 buckets of one cache line each keep the starting table at 4 kB; the
/// table grows when the parked population outgrows it (see module docs).
pub const BUCKETS: usize = 64;

/// The table grows when more than this many waiters are parked per bucket.
pub const GROW_LOAD_FACTOR: usize = 3;

/// Upper bound on the bucket count (64k cache-padded buckets ≈ 4 MB): far
/// beyond any realistic simultaneously-parked population, and a hard stop
/// for pathological growth.
const MAX_BUCKETS: usize = 1 << 16;

/// Park token used by callers that do not need to distinguish waiters.
pub const DEFAULT_PARK_TOKEN: usize = 0;

/// Unpark token used by wakers that do not need to pass information.
pub const DEFAULT_UNPARK_TOKEN: usize = 0;

/// Outcome of a [`ParkingLot::park`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParkResult {
    /// The thread was woken by an unpark primitive; carries the waker's
    /// unpark token.
    Unparked(usize),
    /// The `validate` closure returned `false`; the thread never slept.
    Invalid,
    /// The timeout elapsed before any wake arrived.
    TimedOut,
}

impl ParkResult {
    /// Whether the thread was woken by an unpark (as opposed to timing out
    /// or failing validation).
    pub fn is_unparked(self) -> bool {
        matches!(self, ParkResult::Unparked(_))
    }
}

/// What an unpark primitive did, observed by its callback while the bucket
/// is still locked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UnparkResult {
    /// Number of waiters woken by this call.
    pub unparked: usize,
    /// Whether waiters for the same address remain parked after this call.
    pub have_more: bool,
}

/// What a requeue primitive did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RequeueResult {
    /// Number of waiters woken (up to `max_unpark`).
    pub unparked: usize,
    /// Number of waiters moved to the target address without waking.
    pub requeued: usize,
}

/// A cheap point-in-time view of a [`ParkingLot`]'s internals, for
/// telemetry snapshots: no bucket lock is taken, every field is a relaxed
/// counter read (plus the published table's length).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParkingLotStats {
    /// Buckets in the currently published table.
    pub buckets: usize,
    /// Waiters currently parked, over all addresses.
    pub parked: usize,
    /// Times the bucket table grew (doubled) since the lot was created.
    pub growth_events: u64,
    /// Waiters moved between addresses without waking (condvar
    /// requeue-on-notify traffic) since the lot was created.
    pub requeued_waiters: u64,
}

/// The per-thread signal cell every park sleeps on. One exists per thread
/// (lazily, in a thread-local) and is reused across parks on any address.
#[derive(Debug, Default)]
struct Parker {
    state: Mutex<ParkerState>,
    condvar: Condvar,
    /// The address this parker is currently enqueued under; maintained under
    /// the owning bucket's lock (updated by requeue) so a timed-out thread
    /// can find the bucket it lives in *now*.
    addr: AtomicUsize,
}

#[derive(Debug, Default)]
struct ParkerState {
    signaled: bool,
    unpark_token: usize,
}

impl Parker {
    /// Resets the signal before enqueueing. The park/unpark protocol pairs
    /// every enqueue with exactly one consumed signal, so none can be
    /// pending here.
    fn prepare(&self, addr: usize) {
        let state = self.state.lock().expect("parker poisoned");
        debug_assert!(!state.signaled, "unconsumed unpark signal");
        drop(state);
        self.addr.store(addr, Ordering::Release);
    }

    /// Blocks until signaled; returns the unpark token.
    fn park(&self) -> usize {
        let mut state = self.state.lock().expect("parker poisoned");
        while !state.signaled {
            state = self.condvar.wait(state).expect("parker poisoned");
        }
        state.signaled = false;
        state.unpark_token
    }

    /// Blocks until signaled or until `timeout` elapses; `None` on timeout.
    fn park_timeout(&self, timeout: Duration) -> Option<usize> {
        let deadline = Instant::now() + timeout;
        let mut state = self.state.lock().expect("parker poisoned");
        while !state.signaled {
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .filter(|r| !r.is_zero())?;
            let (guard, timeout_result) = self
                .condvar
                .wait_timeout(state, remaining)
                .expect("parker poisoned");
            state = guard;
            // Inside a model execution a reported timeout is the driver
            // *choosing* the timeout path, not wall-clock expiry; honor it
            // immediately or the schedule would depend on real time.
            if gls_sync::in_model_execution() && timeout_result.timed_out() && !state.signaled {
                return None;
            }
        }
        state.signaled = false;
        Some(state.unpark_token)
    }

    /// Signals the parked thread. Called after the bucket lock is released.
    fn unpark(&self, unpark_token: usize) {
        let mut state = self.state.lock().expect("parker poisoned");
        state.signaled = true;
        state.unpark_token = unpark_token;
        drop(state);
        self.condvar.notify_one();
    }
}

thread_local! {
    static PARKER: Arc<Parker> = Arc::new(Parker::default());
}

/// One parked thread: its lock address, the token it parked with, and the
/// signal cell to wake it through.
#[derive(Debug)]
struct Waiter {
    addr: usize,
    park_token: usize,
    parker: Arc<Parker>,
}

/// A wait bucket: a FIFO queue of parked threads whose lock addresses hash
/// here.
#[derive(Debug, Default)]
struct Bucket {
    queue: Mutex<Vec<Waiter>>,
}

/// One published generation of the bucket table.
#[derive(Debug)]
struct BucketTable {
    buckets: Box<[CachePadded<Bucket>]>,
}

impl BucketTable {
    fn new(buckets: usize) -> Box<Self> {
        assert!(
            buckets.is_power_of_two(),
            "bucket count must be a power of two"
        );
        Box::new(Self {
            buckets: (0..buckets).map(|_| CachePadded::default()).collect(),
        })
    }

    fn bucket_index(&self, addr: usize) -> usize {
        // Fibonacci hashing spreads the (cache-line-aligned, low-entropy)
        // lock addresses over the buckets via the product's high bits.
        let hash = addr.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let bits = self.buckets.len().trailing_zeros();
        if bits == 0 {
            0
        } else {
            hash >> (usize::BITS - bits)
        }
    }

    fn bucket_of(&self, addr: usize) -> &Bucket {
        &self.buckets[self.bucket_index(addr)]
    }
}

/// A table retired by growth. Kept as a raw pointer (not a `Box`) because
/// threads that raced the swap may still hold references into it until
/// their retry; the allocation is freed only when the lot drops.
#[derive(Debug)]
struct RetiredTable(*mut BucketTable);

// SAFETY: the pointer is only dereferenced (to free it) from the lot's
// Drop, which holds `&mut self`.
unsafe impl Send for RetiredTable {}

/// The sharded table of wait buckets. Use [`ParkingLot::global`] in
/// production; dedicated instances exist for tests.
#[derive(Debug)]
pub struct ParkingLot {
    /// The current bucket table, swapped atomically on growth.
    table: AtomicPtr<BucketTable>,
    /// Tables replaced by growth, retained until the lot drops so bucket
    /// references held across a swap never dangle. Doubling growth keeps
    /// the total retained memory below one current-table size.
    old_tables: Mutex<Vec<RetiredTable>>,
    /// Number of waiters currently parked, maintained under bucket locks.
    /// Drives the growth trigger and `total_parked`.
    parked: AtomicUsize,
    /// Serializes growth; `try_lock` keeps concurrent parkers from piling
    /// up behind one grower.
    grow_lock: Mutex<()>,
    /// Completed table growths (raw std atomics: pure telemetry, kept
    /// invisible to the model explorer's scheduling points).
    growth_events: std::sync::atomic::AtomicU64,
    /// Waiters moved by requeue primitives without being woken.
    requeues: std::sync::atomic::AtomicU64,
}

impl Default for ParkingLot {
    fn default() -> Self {
        Self::with_buckets(BUCKETS)
    }
}

impl Drop for ParkingLot {
    fn drop(&mut self) {
        // SAFETY: `&mut self` guarantees no thread holds bucket references;
        // every pointer (current + retired) came from Box::into_raw and
        // appears exactly once.
        unsafe {
            drop(Box::from_raw(self.table.load(Ordering::Acquire)));
            if let Ok(mut retired) = self.old_tables.lock() {
                for table in retired.drain(..) {
                    drop(Box::from_raw(table.0));
                }
            }
        }
    }
}

impl ParkingLot {
    /// Creates a lot with `buckets` initial wait buckets (the table grows
    /// on demand, see the module docs).
    ///
    /// # Panics
    ///
    /// Panics if `buckets` is not a power of two.
    pub fn with_buckets(buckets: usize) -> Self {
        Self {
            table: AtomicPtr::new(Box::into_raw(BucketTable::new(buckets))),
            old_tables: Mutex::new(Vec::new()),
            parked: AtomicUsize::new(0),
            grow_lock: Mutex::new(()),
            growth_events: std::sync::atomic::AtomicU64::new(0),
            requeues: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The process-wide parking lot shared by every futex-style lock.
    pub fn global() -> &'static ParkingLot {
        static GLOBAL: OnceLock<ParkingLot> = OnceLock::new();
        GLOBAL.get_or_init(ParkingLot::default)
    }

    /// The currently published table. The reference stays valid for the
    /// lot's lifetime: replaced tables are retained in `old_tables`, never
    /// freed while the lot lives.
    fn current(&self) -> (&BucketTable, *mut BucketTable) {
        let ptr = self.table.load(Ordering::Acquire);
        // SAFETY: tables are only freed when the lot is dropped.
        (unsafe { &*ptr }, ptr)
    }

    /// Number of buckets in the current table (diagnostics and tests).
    pub fn buckets(&self) -> usize {
        self.current().0.buckets.len()
    }

    /// Locks the bucket of `addr` in the current table. Re-checks the
    /// published table pointer after acquiring: a growth that swapped the
    /// table mid-acquisition would otherwise leave this operation mutating
    /// a drained bucket.
    fn queue_of(&self, addr: usize) -> MutexGuard<'_, Vec<Waiter>> {
        loop {
            let (table, ptr) = self.current();
            let guard = table
                .bucket_of(addr)
                .queue
                .lock()
                .expect("parking-lot bucket poisoned");
            if self.table.load(Ordering::Acquire) == ptr {
                return guard;
            }
        }
    }

    /// Grows the bucket table when the parked population exceeds
    /// [`GROW_LOAD_FACTOR`] waiters per bucket. Called from the park path
    /// only — a thread about to sleep is off the hot path by definition;
    /// unpark and timeout paths never grow.
    fn maybe_grow(&self) {
        if self.parked.load(Ordering::Relaxed) <= self.buckets() * GROW_LOAD_FACTOR
            || self.buckets() >= MAX_BUCKETS
        {
            return;
        }
        // One grower at a time; concurrent parkers skip rather than queue.
        let Ok(_grow) = self.grow_lock.try_lock() else {
            return;
        };
        let (old_table, old_ptr) = self.current();
        // Re-check under the grow lock (another grower may have finished).
        let parked = self.parked.load(Ordering::Relaxed);
        let mut target = old_table.buckets.len();
        while parked > target * GROW_LOAD_FACTOR && target < MAX_BUCKETS {
            target *= 2;
        }
        if target == old_table.buckets.len() {
            return;
        }
        let mut new_table = BucketTable::new(target);
        // Lock every old bucket (in index order: the only multi-bucket
        // acquirers are this loop and `lock_pair`, which orders by address,
        // so there is no lock-order cycle — `lock_pair` holds at most two
        // and both orders are consistent per table generation). Holding all
        // of them freezes the old table: every other operation either
        // finished before we got its bucket or blocks until the swap below
        // and then retries against the new table.
        let mut guards: Vec<MutexGuard<'_, Vec<Waiter>>> = old_table
            .buckets
            .iter()
            .map(|b| b.queue.lock().expect("parking-lot bucket poisoned"))
            .collect();
        for old_queue in guards.iter_mut() {
            // Per-address FIFO order is preserved: all waiters of one
            // address share an old bucket and are appended in order to one
            // new bucket. The new table is private until published (we own
            // the box), so its queues are reached through `get_mut` with
            // no locking — this loop runs while every old bucket lock is
            // held, stalling all parking traffic, so it must be as short
            // as possible.
            for waiter in old_queue.drain(..) {
                let index = new_table.bucket_index(waiter.addr);
                new_table.buckets[index]
                    .queue
                    .get_mut()
                    .expect("parking-lot bucket poisoned")
                    .push(waiter);
            }
        }
        // Publish while still holding every old bucket guard: a thread
        // blocked on an old bucket mutex wakes only after the drop below,
        // re-checks the pointer, and retries against the new table.
        self.table
            .store(Box::into_raw(new_table), Ordering::Release);
        drop(guards);
        // Retain the old table: threads may still hold references into it
        // (blocked on a bucket mutex, mid-retry). Freed on lot drop.
        self.old_tables
            .lock()
            .expect("parking-lot retired list poisoned")
            .push(RetiredTable(old_ptr));
        self.growth_events
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Parks the calling thread on `addr` until an unpark primitive wakes it
    /// or `timeout` (if any) elapses.
    ///
    /// `validate` runs under the bucket lock *before* enqueueing: return
    /// `false` to abort the park (the lock state changed and blocking is no
    /// longer appropriate); no sleep happens and [`ParkResult::Invalid`] is
    /// returned. `before_sleep` runs after the thread is enqueued and the
    /// bucket lock is released, but before the thread blocks — this is where
    /// a condition variable releases its mutex, guaranteeing any notifier
    /// that acquires that mutex afterwards finds the waiter already queued.
    ///
    /// `park_token` is visible to [`ParkingLot::unpark_select`] filters
    /// (e.g. to distinguish reader from writer waiters).
    pub fn park(
        &self,
        addr: usize,
        park_token: usize,
        validate: impl FnOnce() -> bool,
        before_sleep: impl FnOnce(),
        timeout: Option<Duration>,
    ) -> ParkResult {
        let parker = PARKER.with(Arc::clone);
        {
            let mut queue = self.queue_of(addr);
            if !validate() {
                return ParkResult::Invalid;
            }
            parker.prepare(addr);
            queue.push(Waiter {
                addr,
                park_token,
                parker: Arc::clone(&parker),
            });
            self.parked.fetch_add(1, Ordering::Relaxed);
        }
        before_sleep();
        // Grow the bucket table here if the parked population outgrew it:
        // this thread is about to sleep, so it is off the hot path by
        // definition, and the user-visible release (`before_sleep`) already
        // ran, so notifiers are not delayed by a growth.
        self.maybe_grow();
        // The thread is committed to sleeping: note it in the flight
        // recorder (a couple of thread-local stores, nothing shared).
        gls_runtime::flight::record(
            gls_runtime::flight::FlightEventKind::Park,
            addr,
            park_token as u64,
        );
        let result = match timeout {
            None => ParkResult::Unparked(parker.park()),
            Some(timeout) => match parker.park_timeout(timeout) {
                Some(token) => ParkResult::Unparked(token),
                None => self.cancel_park(&parker),
            },
        };
        if let ParkResult::Unparked(token) = result {
            gls_runtime::flight::record(
                gls_runtime::flight::FlightEventKind::Unpark,
                addr,
                token as u64,
            );
        }
        result
    }

    /// Removes a timed-out waiter from whichever bucket it lives in now
    /// (requeues may have moved it), or consumes the in-flight wake if an
    /// unparker got to it first.
    fn cancel_park(&self, parker: &Arc<Parker>) -> ParkResult {
        loop {
            let addr = parker.addr.load(Ordering::Acquire);
            let mut queue = self.queue_of(addr);
            if let Some(index) = queue
                .iter()
                .position(|w| Arc::ptr_eq(&w.parker, parker) && w.addr == addr)
            {
                queue.remove(index);
                self.parked.fetch_sub(1, Ordering::Relaxed);
                return ParkResult::TimedOut;
            }
            // Not in the bucket we expected. Either a requeue moved us (the
            // recorded address changed: retry against the new bucket) or an
            // unparker already dequeued us (the address is unchanged: the
            // wake signal is in flight, wait for it).
            if parker.addr.load(Ordering::Acquire) == addr {
                drop(queue);
                return ParkResult::Unparked(parker.park());
            }
        }
    }

    /// Wakes the longest-parked waiter on `addr`, if any. `callback` runs
    /// while the bucket is still locked, after the waiter was dequeued —
    /// update the lock word there (e.g. clear a parked bit when
    /// [`UnparkResult::have_more`] is `false`) to stay atomic with respect
    /// to concurrent `park` validation.
    pub fn unpark_one(
        &self,
        addr: usize,
        unpark_token: usize,
        callback: impl FnOnce(&UnparkResult),
    ) -> UnparkResult {
        self.unpark_one_with(addr, |_| unpark_token, callback)
    }

    /// Like [`ParkingLot::unpark_one`], but the unpark token is computed
    /// from the woken waiter's **park token**, under the bucket lock.
    ///
    /// This is what lets a lock hand ownership directly to its own waiters
    /// (a handoff unpark token) while waiters of a different kind that were
    /// requeued onto the same address (e.g. condvar waiters moved onto a
    /// mutex by requeue-on-notify) are recognizable by their park token and
    /// woken with ordinary release semantics instead — a handoff token
    /// delivered to a thread that does not understand it would strand the
    /// lock in a held-by-nobody state.
    pub fn unpark_one_with(
        &self,
        addr: usize,
        token_for: impl FnOnce(usize) -> usize,
        callback: impl FnOnce(&UnparkResult),
    ) -> UnparkResult {
        // Allocation-free: this runs on every contended unlock, while
        // holding a bucket lock other colliding locks contend on.
        let woken: Option<(Arc<Parker>, usize)>;
        let result;
        {
            let mut queue = self.queue_of(addr);
            woken = queue.iter().position(|w| w.addr == addr).map(|index| {
                let waiter = queue.remove(index);
                let token = token_for(waiter.park_token);
                (waiter.parker, token)
            });
            if woken.is_some() {
                self.parked.fetch_sub(1, Ordering::Relaxed);
            }
            result = UnparkResult {
                unparked: usize::from(woken.is_some()),
                have_more: queue.iter().any(|w| w.addr == addr),
            };
            callback(&result);
        }
        if let Some((parker, token)) = woken {
            parker.unpark(token);
        }
        result
    }

    /// Wakes one caller-chosen waiter on `addr`, not necessarily the
    /// longest-parked one.
    ///
    /// `choose` receives the park tokens of every waiter on `addr` in FIFO
    /// order and returns `(index, unpark_token)` for the waiter to wake, or
    /// `None` to wake nobody (an out-of-range index also wakes nobody).
    /// Both `choose` and `callback` run under the bucket lock, so the
    /// decision is atomic with park validation and with the lock-word
    /// update in `callback`.
    ///
    /// This is the primitive behind topology-aware (cohort) handoff: a
    /// releasing holder inspects the domains stamped in the park tokens and
    /// hands the lock to a same-cache-domain waiter — bounded by a bypass
    /// budget the policy enforces — instead of strictly the queue head.
    /// [`ParkingLot::unpark_one_with`] is the `choose = head` special case.
    pub fn unpark_choose_with(
        &self,
        addr: usize,
        choose: impl FnOnce(&[usize]) -> Option<(usize, usize)>,
        callback: impl FnOnce(&UnparkResult),
    ) -> UnparkResult {
        let mut woken: Option<(Arc<Parker>, usize)> = None;
        let result;
        {
            let mut queue = self.queue_of(addr);
            let tokens: Vec<usize> = queue
                .iter()
                .filter(|w| w.addr == addr)
                .map(|w| w.park_token)
                .collect();
            if let Some((chosen, unpark_token)) = choose(&tokens) {
                // Map the per-address position back to a queue position.
                let mut matching = 0usize;
                for (queue_index, waiter) in queue.iter().enumerate() {
                    if waiter.addr != addr {
                        continue;
                    }
                    if matching == chosen {
                        let waiter = queue.remove(queue_index);
                        woken = Some((waiter.parker, unpark_token));
                        break;
                    }
                    matching += 1;
                }
            }
            if woken.is_some() {
                self.parked.fetch_sub(1, Ordering::Relaxed);
            }
            result = UnparkResult {
                unparked: usize::from(woken.is_some()),
                have_more: queue.iter().any(|w| w.addr == addr),
            };
            callback(&result);
        }
        if let Some((parker, token)) = woken {
            parker.unpark(token);
        }
        result
    }

    /// Wakes every waiter parked on `addr`, in FIFO order. Returns how many
    /// were woken.
    pub fn unpark_all(&self, addr: usize, unpark_token: usize) -> usize {
        let mut woken: Vec<Arc<Parker>> = Vec::new();
        {
            let mut queue = self.queue_of(addr);
            queue.retain(|w| {
                if w.addr == addr {
                    woken.push(Arc::clone(&w.parker));
                    false
                } else {
                    true
                }
            });
            self.parked.fetch_sub(woken.len(), Ordering::Relaxed);
        }
        for parker in &woken {
            parker.unpark(unpark_token);
        }
        woken.len()
    }

    /// Wakes the longest-parked waiter that parked with `preferred_token`,
    /// or — when none did — every waiter on `addr`, in FIFO order.
    ///
    /// This is the writer-preferring rw release policy ("first parked
    /// writer, else all readers") as a single primitive: the decision, the
    /// dequeues and the `callback` all happen under one bucket lock, atomic
    /// with park validation, and the bucket critical section allocates at
    /// most the woken list (nothing at all on the single-waiter path).
    pub fn unpark_preferred(
        &self,
        addr: usize,
        preferred_token: usize,
        unpark_token: usize,
        callback: impl FnOnce(&UnparkResult),
    ) -> UnparkResult {
        let mut woken: Vec<Arc<Parker>> = Vec::new();
        let mut preferred: Option<Arc<Parker>> = None;
        let result;
        {
            let mut queue = self.queue_of(addr);
            if let Some(index) = queue
                .iter()
                .position(|w| w.addr == addr && w.park_token == preferred_token)
            {
                preferred = Some(queue.remove(index).parker);
            } else {
                queue.retain(|w| {
                    if w.addr == addr {
                        woken.push(Arc::clone(&w.parker));
                        false
                    } else {
                        true
                    }
                });
            }
            result = UnparkResult {
                unparked: usize::from(preferred.is_some()) + woken.len(),
                have_more: queue.iter().any(|w| w.addr == addr),
            };
            self.parked.fetch_sub(result.unparked, Ordering::Relaxed);
            callback(&result);
        }
        if let Some(parker) = preferred {
            parker.unpark(unpark_token);
        }
        for parker in &woken {
            parker.unpark(unpark_token);
        }
        result
    }

    /// Wakes a caller-selected subset of the waiters parked on `addr`.
    ///
    /// `select` receives the park tokens of every waiter on `addr` in FIFO
    /// order and returns the indices to wake (out-of-range indices are
    /// ignored; wakeups preserve FIFO order regardless of the order of the
    /// returned indices). Both `select` and `callback` run under the bucket
    /// lock; the actual wakeups happen after it is released.
    ///
    /// This is the primitive behind writer-preferring rw wakeup ("wake the
    /// first parked writer, else all readers") where the decision must be
    /// atomic with parked-bit maintenance — two separate `unpark_one` /
    /// `unpark_all` calls would race with new waiters parking in between.
    pub fn unpark_select(
        &self,
        addr: usize,
        select: impl FnOnce(&[usize]) -> Vec<usize>,
        unpark_token: usize,
        callback: impl FnOnce(&UnparkResult),
    ) -> UnparkResult {
        self.unpark_select_with(
            addr,
            |tokens| {
                select(tokens)
                    .into_iter()
                    .map(|i| (i, unpark_token))
                    .collect()
            },
            callback,
        )
    }

    /// Like [`ParkingLot::unpark_select`], but each selected waiter gets its
    /// own unpark token: `select` returns `(index, unpark_token)` pairs.
    ///
    /// Reader-writer handoff needs this: one release may wake a parked
    /// writer with a "the write lock is yours" token while a later release
    /// wakes a cohort of readers with "a read slot is pre-charged for you" —
    /// and requeued condvar waiters sharing the address must still receive
    /// a token they understand.
    pub fn unpark_select_with(
        &self,
        addr: usize,
        select: impl FnOnce(&[usize]) -> Vec<(usize, usize)>,
        callback: impl FnOnce(&UnparkResult),
    ) -> UnparkResult {
        let mut woken: Vec<(Arc<Parker>, usize)> = Vec::new();
        let result;
        {
            let mut queue = self.queue_of(addr);
            let tokens: Vec<usize> = queue
                .iter()
                .filter(|w| w.addr == addr)
                .map(|w| w.park_token)
                .collect();
            let mut chosen = select(&tokens);
            chosen.sort_unstable_by_key(|&(i, _)| i);
            chosen.dedup_by_key(|&mut (i, _)| i);
            // Walk the queue once, mapping per-address positions back to
            // queue positions; remove back-to-front to keep indices stable.
            let mut matching = 0usize;
            let mut remove: Vec<(usize, usize)> = Vec::with_capacity(chosen.len());
            for (queue_index, waiter) in queue.iter().enumerate() {
                if waiter.addr != addr {
                    continue;
                }
                if let Ok(pos) = chosen.binary_search_by_key(&matching, |&(i, _)| i) {
                    remove.push((queue_index, chosen[pos].1));
                }
                matching += 1;
            }
            for &(queue_index, unpark_token) in remove.iter().rev() {
                woken.push((queue.remove(queue_index).parker, unpark_token));
            }
            woken.reverse(); // back-to-front removal reversed FIFO order
            result = UnparkResult {
                unparked: woken.len(),
                have_more: queue.iter().any(|w| w.addr == addr),
            };
            self.parked.fetch_sub(result.unparked, Ordering::Relaxed);
            callback(&result);
        }
        for (parker, unpark_token) in woken {
            parker.unpark(unpark_token);
        }
        result
    }

    /// Wakes up to `max_unpark` waiters of `from` and moves up to
    /// `max_requeue` of the remaining ones onto `to` without waking them
    /// (they wake on a future unpark of `to`, FIFO behind its existing
    /// waiters). `callback` runs while both buckets are locked.
    pub fn unpark_requeue(
        &self,
        from: usize,
        to: usize,
        max_unpark: usize,
        max_requeue: usize,
        unpark_token: usize,
        callback: impl FnOnce(&RequeueResult),
    ) -> RequeueResult {
        self.unpark_requeue_with(
            from,
            to,
            || (max_unpark, max_requeue),
            unpark_token,
            callback,
        )
    }

    /// Like [`ParkingLot::unpark_requeue`], but the `(max_unpark,
    /// max_requeue)` split is decided by `decide`, which runs **under both
    /// bucket locks** — atomically with park validation on either address.
    ///
    /// This is the primitive behind condvar requeue-on-notify: the decision
    /// "requeue onto the mutex vs wake now" must inspect (and update) the
    /// mutex word with no window for the mutex to be released in between,
    /// or a requeued waiter could sleep on a mutex nobody holds.
    pub fn unpark_requeue_with(
        &self,
        from: usize,
        to: usize,
        decide: impl FnOnce() -> (usize, usize),
        unpark_token: usize,
        callback: impl FnOnce(&RequeueResult),
    ) -> RequeueResult {
        let mut woken: Vec<Arc<Parker>> = Vec::new();
        let result;
        {
            let (mut from_queue, mut to_queue) = self.lock_pair(from, to);
            // Nothing to move: skip `decide` entirely, so a notify with no
            // waiters does not disturb the target lock's state (e.g.
            // spuriously raise a futex's parked bit, forcing its next
            // release through the slow path).
            let (max_unpark, max_requeue) = if from_queue.iter().any(|w| w.addr == from) {
                decide()
            } else {
                (0, 0)
            };
            let mut moved: Vec<Waiter> = Vec::new();
            let mut unparked = 0usize;
            let mut requeued = 0usize;
            let mut index = 0;
            while index < from_queue.len() {
                if from_queue[index].addr != from {
                    index += 1;
                    continue;
                }
                if unparked < max_unpark {
                    woken.push(from_queue.remove(index).parker);
                    unparked += 1;
                } else if requeued < max_requeue {
                    let mut waiter = from_queue.remove(index);
                    waiter.addr = to;
                    // Keep the parker's recorded address in sync so a timed
                    // -out waiter searches the right bucket (both buckets
                    // are locked here, so the update is atomic to it).
                    waiter.parker.addr.store(to, Ordering::Release);
                    moved.push(waiter);
                    requeued += 1;
                } else {
                    break;
                }
            }
            match &mut to_queue {
                Some(queue) => queue.extend(moved),
                None => from_queue.extend(moved),
            }
            result = RequeueResult { unparked, requeued };
            self.parked.fetch_sub(result.unparked, Ordering::Relaxed);
            if result.requeued > 0 {
                self.requeues
                    .fetch_add(result.requeued as u64, std::sync::atomic::Ordering::Relaxed);
            }
            callback(&result);
        }
        for parker in woken {
            parker.unpark(unpark_token);
        }
        result
    }

    /// Locks the buckets of `from` and `to` in a deadlock-free order within
    /// one table generation, retrying if a growth swapped the table while
    /// acquiring. Returns `(from_queue, Some(to_queue))`, or `(queue, None)`
    /// when both addresses share a bucket.
    #[allow(clippy::type_complexity)]
    fn lock_pair(
        &self,
        from: usize,
        to: usize,
    ) -> (
        MutexGuard<'_, Vec<Waiter>>,
        Option<MutexGuard<'_, Vec<Waiter>>>,
    ) {
        loop {
            let (table, ptr) = self.current();
            let from_bucket = table.bucket_of(from);
            let to_bucket = table.bucket_of(to);
            fn lock(b: &Bucket) -> MutexGuard<'_, Vec<Waiter>> {
                b.queue.lock().expect("parking-lot bucket poisoned")
            }
            let (first, second) = if std::ptr::eq(from_bucket, to_bucket) {
                (lock(from_bucket), None)
            } else if (from_bucket as *const Bucket as usize)
                < (to_bucket as *const Bucket as usize)
            {
                let first = lock(from_bucket);
                let second = lock(to_bucket);
                (first, Some(second))
            } else {
                let second = lock(to_bucket);
                let first = lock(from_bucket);
                (first, Some(second))
            };
            if self.table.load(Ordering::Acquire) == ptr {
                return (first, second);
            }
        }
    }

    /// Number of threads currently parked on `addr` (racy; diagnostics and
    /// queue-length reporting).
    pub fn parked_count(&self, addr: usize) -> usize {
        self.queue_of(addr)
            .iter()
            .filter(|w| w.addr == addr)
            .count()
    }

    /// Total number of threads parked in this lot, over all addresses
    /// (racy; tests and diagnostics).
    pub fn total_parked(&self) -> usize {
        self.parked.load(Ordering::Relaxed)
    }

    /// A point-in-time [`ParkingLotStats`] view: bucket count, parked
    /// population, completed growths and requeued waiters. Racy by design —
    /// every field is a relaxed counter read, so snapshotting never touches
    /// a bucket lock.
    pub fn stats(&self) -> ParkingLotStats {
        use std::sync::atomic::Ordering::Relaxed;
        ParkingLotStats {
            buckets: self.buckets(),
            parked: self.total_parked(),
            growth_events: self.growth_events.load(Relaxed),
            requeued_waiters: self.requeues.load(Relaxed),
        }
    }

    /// Discards every parked waiter without waking anyone. Model builds
    /// only: an *expected-failure* exploration aborts its virtual threads
    /// wherever they stand, which can leave their (now dead) waiter entries
    /// in the global lot; a later exploration reusing the same addresses
    /// would let those stale entries absorb wakeups meant for live waiters.
    /// Regression tests call this between explorations, when no virtual
    /// thread is alive.
    #[cfg(gls_model)]
    pub fn model_purge(&self) {
        let (table, _) = self.current();
        let mut removed = 0usize;
        for bucket in table.buckets.iter() {
            let mut queue = bucket.queue.lock().expect("parking-lot bucket poisoned");
            removed += queue.len();
            queue.clear();
        }
        self.parked.fetch_sub(removed, Ordering::Relaxed);
    }
}

#[cfg(test)]
// Raw std sync and wall-clock sleeps are fine in stress tests: they pace
// real threads, not modeled ones (see clippy.toml).
#[allow(clippy::disallowed_types, clippy::disallowed_methods)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    /// Spawns `n` threads that park on `addr` and records the order in which
    /// they wake. Returns once all are enqueued.
    fn park_squad(
        lot: &Arc<ParkingLot>,
        addr: usize,
        n: usize,
        wake_order: &Arc<Mutex<Vec<usize>>>,
    ) -> Vec<std::thread::JoinHandle<ParkResult>> {
        let enqueue_barrier = Arc::new(Barrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let lot = Arc::clone(lot);
                let order = Arc::clone(wake_order);
                let barrier = Arc::clone(&enqueue_barrier);
                std::thread::spawn(move || {
                    // Serialize enqueue order by index so FIFO is testable.
                    loop {
                        if lot.parked_count(addr) == i {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    let result = lot.park(
                        addr,
                        i, // park token = arrival index
                        || true,
                        || {
                            barrier.wait();
                        },
                        None,
                    );
                    order.lock().unwrap().push(i);
                    result
                })
            })
            .collect();
        while lot.parked_count(addr) < n {
            std::thread::yield_now();
        }
        handles
    }

    #[test]
    fn unpark_one_wakes_in_fifo_order() {
        let lot = Arc::new(ParkingLot::with_buckets(4));
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles = park_squad(&lot, 0x100, 3, &order);
        for _ in 0..3 {
            let before = order.lock().unwrap().len();
            let result = lot.unpark_one(0x100, DEFAULT_UNPARK_TOKEN, |_| {});
            assert_eq!(result.unparked, 1);
            while order.lock().unwrap().len() == before {
                std::thread::yield_now();
            }
        }
        for h in handles {
            assert!(h.join().unwrap().is_unparked());
        }
        assert_eq!(*order.lock().unwrap(), vec![0, 1, 2], "FIFO wake order");
        assert_eq!(lot.total_parked(), 0);
    }

    #[test]
    fn unpark_all_wakes_everyone_and_reports_counts() {
        let lot = Arc::new(ParkingLot::with_buckets(4));
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles = park_squad(&lot, 0x200, 4, &order);
        assert_eq!(lot.parked_count(0x200), 4);
        assert_eq!(lot.unpark_all(0x200, 7), 4);
        for h in handles {
            assert_eq!(h.join().unwrap(), ParkResult::Unparked(7));
        }
        assert_eq!(lot.parked_count(0x200), 0);
    }

    #[test]
    fn stats_track_growth_and_requeues() {
        let lot = Arc::new(ParkingLot::with_buckets(1));
        let fresh = lot.stats();
        assert_eq!(fresh.buckets, 1);
        assert_eq!(fresh.parked, 0);
        assert_eq!(fresh.growth_events, 0);
        assert_eq!(fresh.requeued_waiters, 0);
        // Park enough waiters to cross GROW_LOAD_FACTOR on the 1-bucket
        // table: the table must double and the growth must be counted.
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles = park_squad(&lot, 0x500, GROW_LOAD_FACTOR + 2, &order);
        let grown = lot.stats();
        assert_eq!(grown.parked, GROW_LOAD_FACTOR + 2);
        assert!(grown.growth_events >= 1, "growth must be counted");
        assert!(grown.buckets > 1, "table must have grown");
        // Requeue one waiter onto another address without waking it.
        let moved = lot.unpark_requeue(0x500, 0x600, 0, 1, DEFAULT_UNPARK_TOKEN, |_| {});
        assert_eq!(moved.requeued, 1);
        assert_eq!(lot.stats().requeued_waiters, 1);
        // Drain everyone.
        lot.unpark_all(0x500, DEFAULT_UNPARK_TOKEN);
        lot.unpark_all(0x600, DEFAULT_UNPARK_TOKEN);
        for h in handles {
            assert!(h.join().unwrap().is_unparked());
        }
        assert_eq!(lot.stats().parked, 0);
    }

    #[test]
    fn validate_failure_aborts_the_park() {
        let lot = ParkingLot::with_buckets(4);
        let result = lot.park(0x300, DEFAULT_PARK_TOKEN, || false, || {}, None);
        assert_eq!(result, ParkResult::Invalid);
        assert_eq!(lot.total_parked(), 0);
    }

    #[test]
    fn park_timeout_expires_and_cleans_the_bucket() {
        let lot = ParkingLot::with_buckets(4);
        let start = Instant::now();
        let result = lot.park(
            0x400,
            DEFAULT_PARK_TOKEN,
            || true,
            || {},
            Some(Duration::from_millis(40)),
        );
        assert_eq!(result, ParkResult::TimedOut);
        assert!(start.elapsed() >= Duration::from_millis(40));
        assert_eq!(lot.total_parked(), 0, "timed-out waiter must dequeue");
    }

    #[test]
    fn unpark_token_reaches_the_parked_thread() {
        let lot = Arc::new(ParkingLot::with_buckets(4));
        let handle = {
            let lot = Arc::clone(&lot);
            std::thread::spawn(move || lot.park(0x500, DEFAULT_PARK_TOKEN, || true, || {}, None))
        };
        while lot.parked_count(0x500) == 0 {
            std::thread::yield_now();
        }
        lot.unpark_one(0x500, 42, |result| {
            assert_eq!(result.unparked, 1);
            assert!(!result.have_more);
        });
        assert_eq!(handle.join().unwrap(), ParkResult::Unparked(42));
    }

    #[test]
    fn requeue_moves_waiters_to_the_target_address() {
        let lot = Arc::new(ParkingLot::with_buckets(4));
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles = park_squad(&lot, 0x600, 3, &order);
        // Wake one, requeue the other two onto 0x700.
        let result = lot.unpark_requeue(0x600, 0x700, 1, usize::MAX, DEFAULT_UNPARK_TOKEN, |r| {
            assert_eq!(r.unparked, 1);
            assert_eq!(r.requeued, 2);
        });
        assert_eq!(result.unparked, 1);
        assert_eq!(result.requeued, 2);
        assert_eq!(lot.parked_count(0x600), 0);
        assert_eq!(lot.parked_count(0x700), 2);
        // The waiter woken by the requeue was the longest-parked one.
        while order.lock().unwrap().is_empty() {
            std::thread::yield_now();
        }
        assert_eq!(*order.lock().unwrap(), vec![0]);
        // Unparks on the original address find nobody.
        assert_eq!(lot.unpark_all(0x600, DEFAULT_UNPARK_TOKEN), 0);
        // The requeued waiters wake on the target address.
        assert_eq!(lot.unpark_all(0x700, DEFAULT_UNPARK_TOKEN), 2);
        for h in handles {
            assert!(h.join().unwrap().is_unparked());
        }
        let mut woken = order.lock().unwrap().clone();
        woken.sort_unstable();
        assert_eq!(woken, vec![0, 1, 2]);
    }

    #[test]
    fn timed_park_survives_a_requeue() {
        // A waiter parked with a timeout is requeued to another address and
        // then times out there: it must remove itself from the bucket it
        // lives in *now*, not the one it parked on.
        let lot = Arc::new(ParkingLot::with_buckets(4));
        let handle = {
            let lot = Arc::clone(&lot);
            std::thread::spawn(move || {
                lot.park(
                    0x800,
                    DEFAULT_PARK_TOKEN,
                    || true,
                    || {},
                    Some(Duration::from_millis(80)),
                )
            })
        };
        while lot.parked_count(0x800) == 0 {
            std::thread::yield_now();
        }
        lot.unpark_requeue(0x800, 0x900, 0, usize::MAX, DEFAULT_UNPARK_TOKEN, |_| {});
        assert_eq!(lot.parked_count(0x900), 1);
        assert_eq!(handle.join().unwrap(), ParkResult::TimedOut);
        assert_eq!(lot.total_parked(), 0);
    }

    #[test]
    fn select_can_prefer_a_tagged_waiter() {
        // Three waiters with tokens [0, 1, 0]; the selector picks the first
        // waiter with token 1 — the rw "first parked writer" policy.
        let lot = Arc::new(ParkingLot::with_buckets(4));
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles = park_squad(&lot, 0xA00, 3, &order);
        let result = lot.unpark_select(
            0xA00,
            |tokens| {
                assert_eq!(tokens, &[0, 1, 2]);
                vec![1]
            },
            DEFAULT_UNPARK_TOKEN,
            |r| {
                assert_eq!(r.unparked, 1);
                assert!(r.have_more);
            },
        );
        assert_eq!(result.unparked, 1);
        while order.lock().unwrap().is_empty() {
            std::thread::yield_now();
        }
        assert_eq!(*order.lock().unwrap(), vec![1], "the tagged waiter woke");
        assert_eq!(lot.unpark_all(0xA00, DEFAULT_UNPARK_TOKEN), 2);
        for h in handles {
            assert!(h.join().unwrap().is_unparked());
        }
    }

    #[test]
    fn unpark_preferred_wakes_tagged_waiter_else_everyone() {
        // Tokens [0, 1, 0]: preferring token 1 wakes only the middle
        // waiter; a second call (no tagged waiter left) wakes the rest.
        let lot = Arc::new(ParkingLot::with_buckets(4));
        let order = Arc::new(Mutex::new(Vec::new()));
        let handles = park_squad(&lot, 0xB00, 3, &order);
        let result = lot.unpark_preferred(0xB00, 1, DEFAULT_UNPARK_TOKEN, |r| {
            assert_eq!(r.unparked, 1);
            assert!(r.have_more);
        });
        assert_eq!(result.unparked, 1);
        while order.lock().unwrap().is_empty() {
            std::thread::yield_now();
        }
        assert_eq!(*order.lock().unwrap(), vec![1], "the tagged waiter woke");
        let rest = lot.unpark_preferred(0xB00, 1, DEFAULT_UNPARK_TOKEN, |r| {
            assert_eq!(r.unparked, 2);
            assert!(!r.have_more);
        });
        assert_eq!(rest.unparked, 2);
        for h in handles {
            assert!(h.join().unwrap().is_unparked());
        }
        assert_eq!(lot.total_parked(), 0);
    }

    #[test]
    fn distinct_addresses_sharing_a_bucket_stay_separate() {
        // With a single bucket every address collides; unparks must still
        // only wake waiters of the matching address.
        let lot = Arc::new(ParkingLot::with_buckets(1));
        let woken_a = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = [(0x10usize, &woken_a), (0x20usize, &woken_a)]
            .into_iter()
            .enumerate()
            .map(|(i, (addr, counter))| {
                let lot = Arc::clone(&lot);
                let counter = Arc::clone(counter);
                std::thread::spawn(move || {
                    let r = lot.park(addr, DEFAULT_PARK_TOKEN, || true, || {}, None);
                    if i == 0 {
                        counter.fetch_add(1, Ordering::Release);
                    }
                    r
                })
            })
            .collect();
        while lot.total_parked() < 2 {
            std::thread::yield_now();
        }
        assert_eq!(lot.parked_count(0x10), 1);
        assert_eq!(lot.parked_count(0x20), 1);
        assert_eq!(lot.unpark_all(0x10, DEFAULT_UNPARK_TOKEN), 1);
        while woken_a.load(Ordering::Acquire) == 0 {
            std::thread::yield_now();
        }
        assert_eq!(lot.parked_count(0x20), 1, "other address undisturbed");
        assert_eq!(lot.unpark_all(0x20, DEFAULT_UNPARK_TOKEN), 1);
        for h in handles {
            assert!(h.join().unwrap().is_unparked());
        }
    }

    #[test]
    fn global_lot_is_a_singleton() {
        assert!(std::ptr::eq(ParkingLot::global(), ParkingLot::global()));
    }

    #[test]
    fn table_grows_under_parked_load_and_waiters_survive() {
        // 2 initial buckets, GROW_LOAD_FACTOR waiters per bucket: parking 24
        // threads on 24 distinct addresses must grow the table, and every
        // waiter must remain reachable (unparkable) afterwards.
        let lot = Arc::new(ParkingLot::with_buckets(2));
        let n = 24usize;
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let lot = Arc::clone(&lot);
                std::thread::spawn(move || {
                    lot.park(0x1000 + i * 64, DEFAULT_PARK_TOKEN, || true, || {}, None)
                })
            })
            .collect();
        while lot.total_parked() < n {
            std::thread::yield_now();
        }
        // Growth triggers on the next park once the load threshold is
        // crossed; at 24 parked the 2-bucket table must have grown.
        assert!(
            lot.buckets() > 2,
            "table should have grown (buckets = {})",
            lot.buckets()
        );
        for i in 0..n {
            assert_eq!(lot.parked_count(0x1000 + i * 64), 1, "waiter {i} survives");
            assert_eq!(lot.unpark_all(0x1000 + i * 64, 9), 1);
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), ParkResult::Unparked(9));
        }
        assert_eq!(lot.total_parked(), 0);
    }

    #[test]
    fn growth_preserves_fifo_order_per_address() {
        let lot = Arc::new(ParkingLot::with_buckets(1));
        let order = Arc::new(Mutex::new(Vec::new()));
        // Three FIFO waiters on one address...
        let fifo = park_squad(&lot, 0xF1F0, 3, &order);
        // ...then enough waiters elsewhere to force a growth past them.
        let filler: Vec<_> = (0..8)
            .map(|i| {
                let lot = Arc::clone(&lot);
                std::thread::spawn(move || {
                    lot.park(0x2000 + i * 64, DEFAULT_PARK_TOKEN, || true, || {}, None)
                })
            })
            .collect();
        while lot.total_parked() < 11 {
            std::thread::yield_now();
        }
        assert!(lot.buckets() > 1, "growth should have happened");
        for _ in 0..3 {
            let before = order.lock().unwrap().len();
            assert_eq!(
                lot.unpark_one(0xF1F0, DEFAULT_UNPARK_TOKEN, |_| {})
                    .unparked,
                1
            );
            while order.lock().unwrap().len() == before {
                std::thread::yield_now();
            }
        }
        assert_eq!(
            *order.lock().unwrap(),
            vec![0, 1, 2],
            "FIFO order survives the table growth"
        );
        for i in 0..8 {
            lot.unpark_all(0x2000 + i * 64, DEFAULT_UNPARK_TOKEN);
        }
        for h in fifo.into_iter().chain(filler) {
            assert!(h.join().unwrap().is_unparked());
        }
        assert_eq!(lot.total_parked(), 0);
    }

    #[test]
    fn requeue_with_decides_under_the_bucket_locks() {
        // The decide closure sees a consistent world: a waiter parked on
        // `from` cannot be concurrently unparked while decide runs.
        let lot = Arc::new(ParkingLot::with_buckets(4));
        let handle = {
            let lot = Arc::clone(&lot);
            std::thread::spawn(move || lot.park(0x10, DEFAULT_PARK_TOKEN, || true, || {}, None))
        };
        while lot.parked_count(0x10) == 0 {
            std::thread::yield_now();
        }
        // Decide to requeue instead of waking.
        let result =
            lot.unpark_requeue_with(0x10, 0x20, || (0, usize::MAX), DEFAULT_UNPARK_TOKEN, |_| {});
        assert_eq!(result.unparked, 0);
        assert_eq!(result.requeued, 1);
        assert_eq!(lot.parked_count(0x20), 1);
        assert_eq!(lot.unpark_all(0x20, DEFAULT_UNPARK_TOKEN), 1);
        assert!(handle.join().unwrap().is_unparked());
    }
}
