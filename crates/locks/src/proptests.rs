//! Model-based property tests for the reader-writer locks: under any
//! sequence of guard acquisitions and releases, a writer and a reader must
//! never be admitted concurrently, and the lock's reader count must always
//! equal the number of live read guards. Plus a liveness/leak property for
//! the parking lot: any randomized sequence of park/unpark/requeue
//! operations must leave every wait bucket empty once the dust settles.

use proptest::prelude::*;

use crate::raw::{QueueInformed, RawLock, RawRwLock, RawTryLock};
use crate::rw_mutex::RwMutexLock;
use crate::rwlock::RwTtasLock;

/// One step of the single-threaded model: acquire or release shared or
/// exclusive access through the non-blocking interface.
#[derive(Debug, Clone, Copy)]
enum Op {
    TryRead,
    DropRead,
    TryWrite,
    DropWrite,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::TryRead),
        Just(Op::DropRead),
        Just(Op::TryWrite),
        Just(Op::DropWrite),
    ]
}

/// One step of the parking-lot sequence: park a fresh thread on an address,
/// wake one or all waiters of an address, or requeue between addresses.
#[derive(Debug, Clone, Copy)]
enum ParkOp {
    Park(usize),
    UnparkOne(usize),
    UnparkAll(usize),
    Requeue(usize, usize),
}

fn park_op_strategy() -> impl Strategy<Value = ParkOp> {
    // Three addresses across a 2-bucket lot: collisions guaranteed, so the
    // per-address filtering inside shared buckets is exercised too.
    let addr = 1usize..4;
    prop_oneof![
        addr.clone().prop_map(ParkOp::Park),
        addr.clone().prop_map(ParkOp::UnparkOne),
        addr.clone().prop_map(ParkOp::UnparkAll),
        (1usize..4, 1usize..4).prop_map(|(a, b)| ParkOp::Requeue(a, b)),
    ]
}

proptest! {
    // Fewer cases than the single-threaded models below: every case spawns
    // real threads and may ride out a 200 ms park timeout.
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any sequence of park/unpark/requeue operations leaves the parking
    /// lot empty: every parked thread is eventually woken (or times out and
    /// removes itself), no waiter record leaks into any bucket, and every
    /// spawned thread observes a definite outcome.
    #[test]
    fn parking_lot_buckets_drain(ops in proptest::collection::vec(park_op_strategy(), 1..24)) {
        use crate::park::{ParkResult, ParkingLot, DEFAULT_PARK_TOKEN, DEFAULT_UNPARK_TOKEN};
        use std::sync::Arc;
        use std::time::Duration;

        let lot = Arc::new(ParkingLot::with_buckets(2));
        let mut handles = Vec::new();
        for op in ops {
            match op {
                ParkOp::Park(addr) => {
                    let parker_lot = Arc::clone(&lot);
                    handles.push(std::thread::spawn(move || {
                        // The timeout bounds the test: a waiter nobody wakes
                        // removes itself instead of hanging the run.
                        parker_lot.park(
                            addr,
                            DEFAULT_PARK_TOKEN,
                            || true,
                            || {},
                            Some(Duration::from_millis(200)),
                        )
                    }));
                    // Give the waiter a moment to enqueue so later ops can
                    // see it; not required for the invariant, it just makes
                    // the sequences denser.
                    for _ in 0..100 {
                        if lot.parked_count(addr) > 0 {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
                ParkOp::UnparkOne(addr) => {
                    lot.unpark_one(addr, DEFAULT_UNPARK_TOKEN, |_| {});
                }
                ParkOp::UnparkAll(addr) => {
                    lot.unpark_all(addr, DEFAULT_UNPARK_TOKEN);
                }
                ParkOp::Requeue(from, to) => {
                    lot.unpark_requeue(from, to, 0, usize::MAX, DEFAULT_UNPARK_TOKEN, |_| {});
                }
            }
        }
        // Drain: wake whatever is still parked, then collect every thread.
        for addr in 1..4 {
            lot.unpark_all(addr, DEFAULT_UNPARK_TOKEN);
        }
        for handle in handles {
            let result = handle.join().expect("parked thread panicked");
            prop_assert!(
                matches!(result, ParkResult::Unparked(_) | ParkResult::TimedOut),
                "every park ends in a wake or a timeout, got {result:?}"
            );
        }
        prop_assert_eq!(lot.total_parked(), 0, "bucket state must drain");
        for addr in 1..4 {
            prop_assert_eq!(lot.parked_count(addr), 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The data-carrying TTAS rwlock against a guard-counting model: reader
    /// count tracks live guards exactly, writer and readers never coexist,
    /// and try operations succeed precisely when the model says they may.
    #[test]
    fn ttas_guards_match_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let lock = RwTtasLock::new(0u64);
        let mut read_guards = Vec::new();
        let mut write_guard = None;
        for op in ops {
            match op {
                Op::TryRead => {
                    let admitted = lock.try_read();
                    // Single-threaded: no pending writer intent, so a read
                    // is admitted iff no write guard is live.
                    prop_assert_eq!(admitted.is_some(), write_guard.is_none());
                    read_guards.extend(admitted);
                }
                Op::DropRead => {
                    read_guards.pop();
                }
                Op::TryWrite => {
                    let admitted = lock.try_write();
                    prop_assert_eq!(
                        admitted.is_some(),
                        write_guard.is_none() && read_guards.is_empty()
                    );
                    if let Some(g) = admitted {
                        write_guard = Some(g);
                    }
                }
                Op::DropWrite => {
                    write_guard = None;
                }
            }
            // Invariants after every step.
            prop_assert_eq!(lock.reader_count() as usize, read_guards.len());
            prop_assert_eq!(lock.is_write_locked(), write_guard.is_some());
            prop_assert!(
                !(lock.is_write_locked() && lock.reader_count() > 0),
                "writer and readers admitted concurrently"
            );
            prop_assert_eq!(
                lock.queue_length() as usize,
                read_guards.len() + usize::from(write_guard.is_some())
            );
        }
    }

    /// The blocking rw mutex against the same model, through the raw
    /// interface (manual lock/unlock pairing instead of guards).
    #[test]
    fn rw_mutex_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let lock = RwMutexLock::new();
        let mut readers = 0u32;
        let mut writer = false;
        for op in ops {
            match op {
                Op::TryRead => {
                    let admitted = lock.try_read_lock();
                    prop_assert_eq!(admitted, !writer);
                    if admitted {
                        readers += 1;
                    }
                }
                Op::DropRead => {
                    if readers > 0 {
                        lock.read_unlock();
                        readers -= 1;
                    }
                }
                Op::TryWrite => {
                    let admitted = lock.try_lock();
                    prop_assert_eq!(admitted, !writer && readers == 0);
                    writer |= admitted;
                }
                Op::DropWrite => {
                    if writer {
                        lock.unlock();
                        writer = false;
                    }
                }
            }
            prop_assert_eq!(lock.reader_count(), readers);
            prop_assert_eq!(lock.is_write_locked(), writer);
            prop_assert_eq!(lock.is_locked(), writer || readers > 0);
            prop_assert_eq!(lock.queue_length(), u64::from(readers) + u64::from(writer));
        }
    }
}
