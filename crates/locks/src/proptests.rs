//! Model-based property tests for the reader-writer locks: under any
//! sequence of guard acquisitions and releases, a writer and a reader must
//! never be admitted concurrently, and the lock's reader count must always
//! equal the number of live read guards.

use proptest::prelude::*;

use crate::raw::{QueueInformed, RawLock, RawRwLock, RawTryLock};
use crate::rw_mutex::RwMutexLock;
use crate::rwlock::RwTtasLock;

/// One step of the single-threaded model: acquire or release shared or
/// exclusive access through the non-blocking interface.
#[derive(Debug, Clone, Copy)]
enum Op {
    TryRead,
    DropRead,
    TryWrite,
    DropWrite,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::TryRead),
        Just(Op::DropRead),
        Just(Op::TryWrite),
        Just(Op::DropWrite),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The data-carrying TTAS rwlock against a guard-counting model: reader
    /// count tracks live guards exactly, writer and readers never coexist,
    /// and try operations succeed precisely when the model says they may.
    #[test]
    fn ttas_guards_match_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let lock = RwTtasLock::new(0u64);
        let mut read_guards = Vec::new();
        let mut write_guard = None;
        for op in ops {
            match op {
                Op::TryRead => {
                    let admitted = lock.try_read();
                    // Single-threaded: no pending writer intent, so a read
                    // is admitted iff no write guard is live.
                    prop_assert_eq!(admitted.is_some(), write_guard.is_none());
                    read_guards.extend(admitted);
                }
                Op::DropRead => {
                    read_guards.pop();
                }
                Op::TryWrite => {
                    let admitted = lock.try_write();
                    prop_assert_eq!(
                        admitted.is_some(),
                        write_guard.is_none() && read_guards.is_empty()
                    );
                    if let Some(g) = admitted {
                        write_guard = Some(g);
                    }
                }
                Op::DropWrite => {
                    write_guard = None;
                }
            }
            // Invariants after every step.
            prop_assert_eq!(lock.reader_count() as usize, read_guards.len());
            prop_assert_eq!(lock.is_write_locked(), write_guard.is_some());
            prop_assert!(
                !(lock.is_write_locked() && lock.reader_count() > 0),
                "writer and readers admitted concurrently"
            );
            prop_assert_eq!(
                lock.queue_length() as usize,
                read_guards.len() + usize::from(write_guard.is_some())
            );
        }
    }

    /// The blocking rw mutex against the same model, through the raw
    /// interface (manual lock/unlock pairing instead of guards).
    #[test]
    fn rw_mutex_matches_model(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let lock = RwMutexLock::new();
        let mut readers = 0u32;
        let mut writer = false;
        for op in ops {
            match op {
                Op::TryRead => {
                    let admitted = lock.try_read_lock();
                    prop_assert_eq!(admitted, !writer);
                    if admitted {
                        readers += 1;
                    }
                }
                Op::DropRead => {
                    if readers > 0 {
                        lock.read_unlock();
                        readers -= 1;
                    }
                }
                Op::TryWrite => {
                    let admitted = lock.try_lock();
                    prop_assert_eq!(admitted, !writer && readers == 0);
                    writer |= admitted;
                }
                Op::DropWrite => {
                    if writer {
                        lock.unlock();
                        writer = false;
                    }
                }
            }
            prop_assert_eq!(lock.reader_count(), readers);
            prop_assert_eq!(lock.is_write_locked(), writer);
            prop_assert_eq!(lock.is_locked(), writer || readers > 0);
            prop_assert_eq!(lock.queue_length(), u64::from(readers) + u64::from(writer));
        }
    }
}
