//! The topology-aware (cohort) handoff policy, as a pure function.
//!
//! When a [`FutexLock`](crate::FutexLock) release decides to *hand off* (the
//! handoff streak is exhausted — see `futex_mutex`), waking the queue head
//! is not always the best choice on a multi-socket machine: if a waiter
//! parked from the **same cache domain** as the releaser exists, handing the
//! lock to it keeps the lock word (and the data it protects) in the local
//! last-level cache — the cohort-lock observation. The danger is starvation:
//! always preferring local waiters can bypass a remote queue head forever.
//!
//! This module keeps the *policy* — "given these waiters, who runs next?" —
//! out of the lock word and out of the parking-lot machinery, as a pure
//! function over park tokens: deterministic, unit-testable without threads,
//! and shared by the lock implementation and the fairness tests. The lock
//! supplies the mechanism (the bypass counter persisted in its word, the
//! bucket-lock atomicity via
//! [`ParkingLot::unpark_choose_with`](crate::park::ParkingLot::unpark_choose_with));
//! the policy lives here.
//!
//! # Token encoding
//!
//! A park token carries the waiter *kind* in its low [`KIND_BITS`] bits and
//! the waiter's cache domain, biased by one, above them (`0` = domain
//! unknown). Kind `0` is reserved: it is
//! [`DEFAULT_PARK_TOKEN`](crate::park::DEFAULT_PARK_TOKEN), the token of
//! condvar waiters requeued onto a mutex address, which must never be
//! selected for a handoff they would not understand.
//!
//! # Fairness bound
//!
//! [`choose_handoff`] bypasses the queue head only while the persisted
//! bypass counter is below the caller's limit; once the limit is reached the
//! head is served unconditionally and the counter resets. A remote waiter at
//! the head of the queue is therefore admitted after at most `limit`
//! consecutive local handoffs — combined with the handoff streak itself
//! (every [`HANDOFF_WAKEUPS`](crate::futex_mutex::HANDOFF_WAKEUPS)-th
//! contended wakeup is a handoff), total bypasses per admission are bounded
//! by `HANDOFF_WAKEUPS * (limit + 1)`.

/// Number of low token bits carrying the waiter kind.
pub const KIND_BITS: u32 = 3;

/// Mask extracting the waiter kind from a park token.
pub const KIND_MASK: usize = (1 << KIND_BITS) - 1;

/// How many consecutive handoffs may bypass the queue head in favour of a
/// same-domain waiter before the head must be served. Sized to fit the
/// 3-bit bypass counter in the futex word.
pub const COHORT_BYPASS_LIMIT: u32 = 4;

/// Encodes a park token from a waiter kind and an optional cache domain.
///
/// # Panics
///
/// Panics (debug) if `kind` does not fit in [`KIND_BITS`].
#[inline]
pub fn encode_token(kind: usize, domain: Option<usize>) -> usize {
    debug_assert!(kind & !KIND_MASK == 0, "kind {kind} overflows KIND_BITS");
    let biased = match domain {
        // Saturate instead of wrapping if a machine somehow reports more
        // domains than a word can bias: the token degrades to "unknown".
        Some(d) => d.saturating_add(1),
        None => 0,
    };
    kind | (biased << KIND_BITS)
}

/// The waiter kind stored in a park token.
#[inline]
pub fn token_kind(token: usize) -> usize {
    token & KIND_MASK
}

/// The cache domain stored in a park token, if one was stamped.
#[inline]
pub fn token_domain(token: usize) -> Option<usize> {
    (token >> KIND_BITS).checked_sub(1)
}

/// What [`choose_handoff`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandoffChoice {
    /// FIFO index (into the token list) of the waiter to wake.
    pub index: usize,
    /// Whether the wake is a handoff (ownership transfers directly) as
    /// opposed to an ordinary wake-and-recontend.
    pub handoff: bool,
    /// Whether the choice bypassed the queue head in favour of a
    /// same-domain waiter. The caller must advance its persisted bypass
    /// counter when set and reset it when clear.
    pub bypassed_head: bool,
}

/// Picks the waiter a handoff release should wake.
///
/// * `tokens` — park tokens of every waiter on the address, FIFO order;
/// * `kind` — the kind tag of native waiters of the calling lock (only
///   these are eligible for handoff);
/// * `releaser_domain` — the cache domain of the releasing thread;
/// * `bypass` — the persisted count of consecutive head bypasses;
/// * `limit` — the bypass bound (usually [`COHORT_BYPASS_LIMIT`]).
///
/// Rules, in order:
/// 1. no waiters → `None`;
/// 2. head is not a native waiter (e.g. a requeued condvar waiter) →
///    ordinary wake of the head, never a handoff it would not understand;
/// 3. head is native and local (same domain as the releaser, or domain
///    unknown treated as local-enough), **or** the bypass budget is spent →
///    hand off to the head, reset the counter;
/// 4. head is native and remote and budget remains: hand off to the
///    longest-parked native *local* waiter if one exists (a bypass), else
///    to the head.
pub fn choose_handoff(
    tokens: &[usize],
    kind: usize,
    releaser_domain: usize,
    bypass: u32,
    limit: u32,
) -> Option<HandoffChoice> {
    let head = *tokens.first()?;
    if token_kind(head) != kind {
        return Some(HandoffChoice {
            index: 0,
            handoff: false,
            bypassed_head: false,
        });
    }
    let head_local = match token_domain(head) {
        Some(d) => d == releaser_domain,
        None => true,
    };
    if head_local || bypass >= limit {
        return Some(HandoffChoice {
            index: 0,
            handoff: true,
            bypassed_head: false,
        });
    }
    let local = tokens
        .iter()
        .position(|&t| token_kind(t) == kind && token_domain(t) == Some(releaser_domain));
    match local {
        Some(index) => Some(HandoffChoice {
            index,
            handoff: true,
            bypassed_head: true,
        }),
        None => Some(HandoffChoice {
            index: 0,
            handoff: true,
            bypassed_head: false,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KIND: usize = 2; // TOKEN_MUTEX_WAITER

    fn tok(domain: usize) -> usize {
        encode_token(KIND, Some(domain))
    }

    #[test]
    fn token_roundtrip() {
        for kind in 0..=KIND_MASK {
            for domain in [None, Some(0), Some(1), Some(63)] {
                let t = encode_token(kind, domain);
                assert_eq!(token_kind(t), kind);
                assert_eq!(token_domain(t), domain);
            }
        }
    }

    #[test]
    fn empty_queue_chooses_nobody() {
        assert_eq!(choose_handoff(&[], KIND, 0, 0, 4), None);
    }

    #[test]
    fn foreign_head_gets_an_ordinary_wake() {
        // A requeued condvar waiter (kind 0) at the head is woken normally,
        // never handed a token it would not understand — even if a native
        // local waiter is queued behind it.
        let tokens = [encode_token(0, None), tok(0)];
        let c = choose_handoff(&tokens, KIND, 0, 0, 4).unwrap();
        assert_eq!(c.index, 0);
        assert!(!c.handoff);
        assert!(!c.bypassed_head);
    }

    #[test]
    fn local_head_is_handed_off() {
        let tokens = [tok(1), tok(0)];
        let c = choose_handoff(&tokens, KIND, 1, 0, 4).unwrap();
        assert_eq!(c.index, 0);
        assert!(c.handoff);
        assert!(!c.bypassed_head);
    }

    #[test]
    fn unknown_domain_head_counts_as_local() {
        let tokens = [encode_token(KIND, None), tok(0)];
        let c = choose_handoff(&tokens, KIND, 1, 0, 4).unwrap();
        assert_eq!(c.index, 0);
        assert!(c.handoff);
    }

    #[test]
    fn remote_head_is_bypassed_for_the_first_local_waiter() {
        // Head from domain 0, releaser in domain 1, local waiter at index 2.
        let tokens = [tok(0), tok(0), tok(1), tok(1)];
        let c = choose_handoff(&tokens, KIND, 1, 0, 4).unwrap();
        assert_eq!(c.index, 2, "longest-parked local waiter");
        assert!(c.handoff);
        assert!(c.bypassed_head);
    }

    #[test]
    fn remote_head_is_served_once_the_bypass_budget_is_spent() {
        let tokens = [tok(0), tok(1)];
        for bypass in 0..4 {
            let c = choose_handoff(&tokens, KIND, 1, bypass, 4).unwrap();
            assert_eq!(c.index, 1, "bypass {bypass} still within budget");
            assert!(c.bypassed_head);
        }
        let c = choose_handoff(&tokens, KIND, 1, 4, 4).unwrap();
        assert_eq!(c.index, 0, "budget spent: the remote head is admitted");
        assert!(c.handoff);
        assert!(!c.bypassed_head);
    }

    #[test]
    fn remote_head_without_local_waiters_is_served_immediately() {
        let tokens = [tok(0), tok(2)];
        let c = choose_handoff(&tokens, KIND, 1, 0, 4).unwrap();
        assert_eq!(c.index, 0);
        assert!(c.handoff);
        assert!(!c.bypassed_head);
    }

    #[test]
    fn bypass_bound_holds_over_a_simulated_release_sequence() {
        // Simulate the persisted-counter protocol: a remote head with an
        // endless supply of local waiters is admitted after at most `limit`
        // consecutive bypasses.
        let limit = COHORT_BYPASS_LIMIT;
        let mut bypass = 0u32;
        let mut head_served_after = None;
        for round in 0..32 {
            let tokens = [tok(0), tok(1), tok(1), tok(1)];
            let c = choose_handoff(&tokens, KIND, 1, bypass, limit).unwrap();
            if c.index == 0 {
                head_served_after = Some(round);
                break;
            }
            bypass = if c.bypassed_head { bypass + 1 } else { 0 };
        }
        assert_eq!(
            head_served_after,
            Some(limit as usize),
            "remote head admitted after exactly the bypass budget"
        );
    }
}
