//! A TTAS-based reader-writer lock.
//!
//! Several of the evaluated systems (Kyoto Cabinet, SQLite) protect their
//! main data structure with reader-writer locks. The paper overloads the
//! `pthread` reader-writer locks "with our custom TTAS-based implementation"
//! (§5.2, footnote 7); this module is that implementation, in two forms:
//!
//! * [`RwTtasRaw`] — the raw lock (no data), implementing [`RawRwLock`] so
//!   the GLS middleware can manage it like any other algorithm;
//! * [`RwTtasLock<T>`] — the lock carrying the data it protects, like
//!   [`std::sync::RwLock`], built on top of the raw lock.
//!
//! # Writer intent
//!
//! A naive TTAS rwlock admits any arriving reader while the reader count is
//! non-zero, so a continuous stream of readers starves writers indefinitely.
//! Both locks here keep a **writer-intent bit**: the first waiting writer
//! raises it, newly arriving readers back off while it is set, the current
//! readers drain, and the writer gets in. The bit is cleared on write
//! acquisition; further waiting writers re-raise it. This makes the lock
//! writer-preferring under contention — the usual choice for the structure
//! locks of the evaluated systems, where writes are rare but must not be
//! delayed unboundedly.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::cache_padded::CachePadded;
use crate::raw::{QueueInformed, RawLock, RawRwLock, RawTryLock};
use crate::spin_wait::SpinWait;

/// Writer-held flag (high bit).
const WRITER: u32 = 1 << 31;
/// Writer-intent flag: a writer is waiting; new readers back off.
const INTENT: u32 = 1 << 30;
/// The remaining bits count active readers.
const READERS: u32 = INTENT - 1;

/// The raw (data-less) TTAS reader-writer spinlock.
///
/// Waiting is TTAS-style busy waiting with exponential backoff
/// ([`SpinWait`]). Writers announce themselves through the intent bit, so a
/// stream of readers cannot starve them (see the module docs).
///
/// # Example
///
/// ```
/// use gls_locks::{RawRwLock, RwTtasRaw};
///
/// let lock = RwTtasRaw::new();
/// lock.read_lock();
/// assert!(!lock.try_write_lock());
/// lock.read_unlock();
/// lock.write_lock();
/// lock.write_unlock();
/// ```
#[derive(Debug, Default)]
pub struct RwTtasRaw {
    state: CachePadded<RwTtasState>,
}

#[derive(Debug, Default)]
struct RwTtasState {
    /// `WRITER | INTENT | reader count`.
    word: AtomicU32,
    /// Holders + waiters, for [`QueueInformed`].
    queued: AtomicU64,
}

impl RwTtasRaw {
    /// Creates an unlocked rwlock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a writer currently holds the lock.
    pub fn is_write_locked(&self) -> bool {
        self.state.word.load(Ordering::Relaxed) & WRITER != 0
    }

    /// Number of readers currently holding the lock.
    pub fn reader_count(&self) -> u32 {
        self.state.word.load(Ordering::Relaxed) & READERS
    }

    /// Whether a writer has announced intent (is waiting to acquire).
    pub fn writer_pending(&self) -> bool {
        self.state.word.load(Ordering::Relaxed) & INTENT != 0
    }
}

impl RawRwLock for RwTtasRaw {
    fn read_lock(&self) {
        self.state.queued.fetch_add(1, Ordering::Relaxed);
        let mut wait = SpinWait::new();
        loop {
            let current = self.state.word.load(Ordering::Relaxed);
            // Back off while a writer holds the lock *or* waits for it: the
            // intent bit is what lets writers through a reader stream.
            if current & (WRITER | INTENT) == 0
                && self
                    .state
                    .word
                    .compare_exchange_weak(
                        current,
                        current + 1,
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    )
                    .is_ok()
            {
                return;
            }
            wait.spin();
        }
    }

    fn try_read_lock(&self) -> bool {
        let current = self.state.word.load(Ordering::Relaxed);
        if current & (WRITER | INTENT) != 0 {
            return false;
        }
        let acquired = self
            .state
            .word
            .compare_exchange(current, current + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        if acquired {
            self.state.queued.fetch_add(1, Ordering::Relaxed);
        }
        acquired
    }

    fn read_unlock(&self) {
        self.state.word.fetch_sub(1, Ordering::Release);
        self.state.queued.fetch_sub(1, Ordering::Relaxed);
    }
}

impl RawLock for RwTtasRaw {
    const NAME: &'static str = "RW-TTAS";

    /// Acquires exclusive (write) access.
    fn lock(&self) {
        self.state.queued.fetch_add(1, Ordering::Relaxed);
        let mut wait = SpinWait::new();
        loop {
            let current = self.state.word.load(Ordering::Relaxed);
            if current & (WRITER | READERS) == 0 {
                // Free (possibly intent-marked): claim it, consuming the
                // intent bit. Other waiting writers re-raise it below.
                if self
                    .state
                    .word
                    .compare_exchange_weak(current, WRITER, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
                {
                    return;
                }
            } else if current & INTENT == 0 {
                // Announce before waiting so arriving readers back off and
                // the current readers can drain.
                self.state.word.fetch_or(INTENT, Ordering::Relaxed);
            }
            wait.spin();
        }
    }

    /// Releases exclusive access, preserving any other writer's intent bit.
    fn unlock(&self) {
        self.state.word.fetch_and(!WRITER, Ordering::Release);
        self.state.queued.fetch_sub(1, Ordering::Relaxed);
    }

    fn is_locked(&self) -> bool {
        self.state.word.load(Ordering::Relaxed) & (WRITER | READERS) != 0
    }
}

impl RawTryLock for RwTtasRaw {
    fn try_lock(&self) -> bool {
        let current = self.state.word.load(Ordering::Relaxed);
        if current & (WRITER | READERS) != 0 {
            return false;
        }
        let acquired = self
            .state
            .word
            .compare_exchange(current, WRITER, Ordering::Acquire, Ordering::Relaxed)
            .is_ok();
        if acquired {
            self.state.queued.fetch_add(1, Ordering::Relaxed);
        }
        acquired
    }
}

impl QueueInformed for RwTtasRaw {
    fn queue_length(&self) -> u64 {
        self.state.queued.load(Ordering::Relaxed)
    }
}

/// A spinning reader-writer lock protecting a value of type `T`.
///
/// Readers share access; a writer excludes everyone. Built on [`RwTtasRaw`],
/// so it inherits the writer-intent fairness described in the module docs.
///
/// # Example
///
/// ```
/// use gls_locks::RwTtasLock;
///
/// let lock = RwTtasLock::new(vec![1, 2, 3]);
/// assert_eq!(lock.read().len(), 3);
/// lock.write().push(4);
/// assert_eq!(lock.read().len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct RwTtasLock<T> {
    raw: RwTtasRaw,
    data: UnsafeCell<T>,
}

// SAFETY: access to `data` is mediated by the reader/writer protocol of the
// raw lock.
unsafe impl<T: Send> Send for RwTtasLock<T> {}
unsafe impl<T: Send + Sync> Sync for RwTtasLock<T> {}

impl<T> RwTtasLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            raw: RwTtasRaw {
                state: CachePadded::new(RwTtasState {
                    word: AtomicU32::new(0),
                    queued: AtomicU64::new(0),
                }),
            },
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// Acquires shared (read) access, spinning while a writer holds — or
    /// waits for — the lock.
    pub fn read(&self) -> RwTtasReadGuard<'_, T> {
        self.raw.read_lock();
        RwTtasReadGuard { lock: self }
    }

    /// Attempts to acquire shared access without waiting. Fails while a
    /// writer holds the lock or has announced intent.
    pub fn try_read(&self) -> Option<RwTtasReadGuard<'_, T>> {
        // `then` (not `then_some`): constructing a guard eagerly would run
        // its release on the failure path via Drop.
        self.raw
            .try_read_lock()
            .then(|| RwTtasReadGuard { lock: self })
    }

    /// Acquires exclusive (write) access, spinning until all readers and any
    /// writer have left.
    pub fn write(&self) -> RwTtasWriteGuard<'_, T> {
        self.raw.lock();
        RwTtasWriteGuard { lock: self }
    }

    /// Attempts to acquire exclusive access without waiting.
    pub fn try_write(&self) -> Option<RwTtasWriteGuard<'_, T>> {
        self.raw.try_lock().then(|| RwTtasWriteGuard { lock: self })
    }

    /// Whether a writer currently holds the lock.
    pub fn is_write_locked(&self) -> bool {
        self.raw.is_write_locked()
    }

    /// Number of readers currently holding the lock.
    pub fn reader_count(&self) -> u32 {
        self.raw.reader_count()
    }

    /// Holder + waiter count of the underlying raw lock.
    pub fn queue_length(&self) -> u64 {
        self.raw.queue_length()
    }

    /// Mutable access without locking; requires `&mut self`, so it is
    /// statically race-free.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

/// Shared-access guard returned by [`RwTtasLock::read`].
#[derive(Debug)]
pub struct RwTtasReadGuard<'a, T> {
    lock: &'a RwTtasLock<T>,
}

impl<T> std::ops::Deref for RwTtasReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: readers have shared access while the reader count is held.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for RwTtasReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.raw.read_unlock();
    }
}

/// Exclusive-access guard returned by [`RwTtasLock::write`].
#[derive(Debug)]
pub struct RwTtasWriteGuard<'a, T> {
    lock: &'a RwTtasLock<T>,
}

impl<T> std::ops::Deref for RwTtasWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the writer flag grants exclusive access.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for RwTtasWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the writer flag grants exclusive access.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for RwTtasWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.raw.unlock();
    }
}

#[cfg(test)]
// Raw std sync and wall-clock sleeps are fine in stress tests: they pace
// real threads, not modeled ones (see clippy.toml).
#[allow(clippy::disallowed_types, clippy::disallowed_methods)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    #[test]
    fn read_write_roundtrip() {
        let lock = RwTtasLock::new(10u64);
        assert_eq!(*lock.read(), 10);
        *lock.write() += 5;
        assert_eq!(*lock.read(), 15);
        assert_eq!(lock.into_inner(), 15);
    }

    #[test]
    fn multiple_concurrent_readers() {
        let lock = RwTtasLock::new(0u64);
        let r1 = lock.read();
        let r2 = lock.read();
        assert_eq!(lock.reader_count(), 2);
        assert!(lock.try_write().is_none());
        drop(r1);
        drop(r2);
        assert!(lock.try_write().is_some());
    }

    #[test]
    fn writer_excludes_readers() {
        let lock = RwTtasLock::new(0u64);
        let w = lock.write();
        assert!(lock.is_write_locked());
        assert!(lock.try_read().is_none());
        drop(w);
        assert!(lock.try_read().is_some());
    }

    #[test]
    fn get_mut_bypasses_locking() {
        let mut lock = RwTtasLock::new(1u64);
        *lock.get_mut() = 9;
        assert_eq!(*lock.read(), 9);
    }

    #[test]
    fn raw_lock_roundtrip_and_queue() {
        let lock = RwTtasRaw::new();
        assert_eq!(lock.queue_length(), 0);
        lock.read_lock();
        lock.read_lock();
        assert_eq!(lock.queue_length(), 2);
        assert_eq!(lock.reader_count(), 2);
        assert!(!lock.try_lock());
        lock.read_unlock();
        lock.read_unlock();
        lock.lock();
        assert!(lock.is_write_locked());
        assert_eq!(lock.queue_length(), 1);
        assert!(!lock.try_read_lock());
        lock.unlock();
        assert_eq!(lock.queue_length(), 0);
    }

    #[test]
    fn write_unlock_preserves_other_writers_intent() {
        let lock = RwTtasRaw::new();
        lock.lock();
        // Another writer announces while the first holds the lock.
        lock.state.word.fetch_or(INTENT, Ordering::Relaxed);
        lock.unlock();
        assert!(lock.writer_pending(), "intent must survive a write unlock");
        // Readers honor the surviving intent bit.
        assert!(!lock.try_read_lock());
    }

    #[test]
    fn pending_writer_blocks_new_readers() {
        let lock = Arc::new(RwTtasLock::new(0u64));
        let r = lock.read();
        let writer = {
            let lock = Arc::clone(&lock);
            std::thread::spawn(move || {
                *lock.write() += 1;
            })
        };
        // Wait for the writer to announce intent, then verify that a new
        // reader backs off even though only readers hold the lock.
        while !lock.raw.writer_pending() {
            std::hint::spin_loop();
        }
        assert!(lock.try_read().is_none(), "intent bit must repel readers");
        drop(r);
        writer.join().unwrap();
        assert_eq!(*lock.read(), 1);
    }

    /// Regression test for the writer-starvation bug: the old `write` path
    /// required `state == 0` with no intent bit, so 8 readers re-acquiring in
    /// a tight loop kept the reader count non-zero essentially forever and a
    /// writer never got in. With the intent bit it must acquire quickly.
    #[test]
    fn writer_completes_under_continuous_reader_churn() {
        let lock = Arc::new(RwTtasLock::new(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut sum = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        sum = sum.wrapping_add(*lock.read());
                    }
                    sum
                })
            })
            .collect();
        // Let the reader storm establish itself.
        std::thread::sleep(Duration::from_millis(50));
        let start = Instant::now();
        *lock.write() += 1;
        let waited = start.elapsed();
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*lock.read(), 1);
        assert!(
            waited < Duration::from_secs(10),
            "writer starved for {waited:?} under reader churn"
        );
    }

    #[test]
    fn concurrent_writers_do_not_lose_updates() {
        let lock = Arc::new(RwTtasLock::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *lock.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read(), 80_000);
    }

    #[test]
    fn readers_and_writers_interleave_consistently() {
        let lock = Arc::new(RwTtasLock::new((0u64, 0u64)));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        let mut g = lock.write();
                        g.0 += 1;
                        g.1 += 1;
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        let g = lock.read();
                        // Both halves must always agree: a torn view would
                        // mean a reader overlapped a writer.
                        assert_eq!(g.0, g.1);
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        assert_eq!(lock.read().0, 20_000);
    }
}
