//! A TTAS-based reader-writer lock.
//!
//! Several of the evaluated systems (Kyoto Cabinet, SQLite) protect their
//! main data structure with reader-writer locks. The paper overloads the
//! `pthread` reader-writer locks "with our custom TTAS-based implementation"
//! (§5.2, footnote 7); this module is that implementation, carrying the data
//! it protects like [`std::sync::RwLock`].

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, Ordering};

use crate::cache_padded::CachePadded;
use crate::spin_wait::SpinWait;

/// Writer-held flag (high bit); the remaining bits count active readers.
const WRITER: u32 = 1 << 31;

/// A spinning reader-writer lock protecting a value of type `T`.
///
/// Readers share access; a writer excludes everyone. Waiting is TTAS-style
/// busy waiting with exponential backoff.
///
/// # Example
///
/// ```
/// use gls_locks::RwTtasLock;
///
/// let lock = RwTtasLock::new(vec![1, 2, 3]);
/// assert_eq!(lock.read().len(), 3);
/// lock.write().push(4);
/// assert_eq!(lock.read().len(), 4);
/// ```
#[derive(Debug, Default)]
pub struct RwTtasLock<T> {
    state: CachePadded<AtomicU32>,
    data: UnsafeCell<T>,
}

// SAFETY: access to `data` is mediated by the reader/writer protocol below.
unsafe impl<T: Send> Send for RwTtasLock<T> {}
unsafe impl<T: Send + Sync> Sync for RwTtasLock<T> {}

impl<T> RwTtasLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            state: CachePadded::new(AtomicU32::new(0)),
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }

    /// Acquires shared (read) access, spinning until no writer holds the lock.
    pub fn read(&self) -> RwTtasReadGuard<'_, T> {
        let mut wait = SpinWait::new();
        loop {
            let current = self.state.load(Ordering::Relaxed);
            if current & WRITER == 0
                && self
                    .state
                    .compare_exchange_weak(
                        current,
                        current + 1,
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    )
                    .is_ok()
            {
                return RwTtasReadGuard { lock: self };
            }
            wait.spin();
        }
    }

    /// Attempts to acquire shared access without waiting.
    pub fn try_read(&self) -> Option<RwTtasReadGuard<'_, T>> {
        let current = self.state.load(Ordering::Relaxed);
        if current & WRITER != 0 {
            return None;
        }
        self.state
            .compare_exchange(current, current + 1, Ordering::Acquire, Ordering::Relaxed)
            .ok()
            .map(|_| RwTtasReadGuard { lock: self })
    }

    /// Acquires exclusive (write) access, spinning until all readers and any
    /// writer have left.
    pub fn write(&self) -> RwTtasWriteGuard<'_, T> {
        let mut wait = SpinWait::new();
        loop {
            if self.state.load(Ordering::Relaxed) == 0
                && self
                    .state
                    .compare_exchange_weak(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return RwTtasWriteGuard { lock: self };
            }
            wait.spin();
        }
    }

    /// Attempts to acquire exclusive access without waiting.
    pub fn try_write(&self) -> Option<RwTtasWriteGuard<'_, T>> {
        self.state
            .compare_exchange(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
            .ok()
            .map(|_| RwTtasWriteGuard { lock: self })
    }

    /// Whether a writer currently holds the lock.
    pub fn is_write_locked(&self) -> bool {
        self.state.load(Ordering::Relaxed) & WRITER != 0
    }

    /// Number of readers currently holding the lock.
    pub fn reader_count(&self) -> u32 {
        self.state.load(Ordering::Relaxed) & !WRITER
    }

    /// Mutable access without locking; requires `&mut self`, so it is
    /// statically race-free.
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

/// Shared-access guard returned by [`RwTtasLock::read`].
#[derive(Debug)]
pub struct RwTtasReadGuard<'a, T> {
    lock: &'a RwTtasLock<T>,
}

impl<T> std::ops::Deref for RwTtasReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: readers have shared access while the reader count is held.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> Drop for RwTtasReadGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.state.fetch_sub(1, Ordering::Release);
    }
}

/// Exclusive-access guard returned by [`RwTtasLock::write`].
#[derive(Debug)]
pub struct RwTtasWriteGuard<'a, T> {
    lock: &'a RwTtasLock<T>,
}

impl<T> std::ops::Deref for RwTtasWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the writer flag grants exclusive access.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T> std::ops::DerefMut for RwTtasWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the writer flag grants exclusive access.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T> Drop for RwTtasWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.state.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn read_write_roundtrip() {
        let lock = RwTtasLock::new(10u64);
        assert_eq!(*lock.read(), 10);
        *lock.write() += 5;
        assert_eq!(*lock.read(), 15);
        assert_eq!(lock.into_inner(), 15);
    }

    #[test]
    fn multiple_concurrent_readers() {
        let lock = RwTtasLock::new(0u64);
        let r1 = lock.read();
        let r2 = lock.read();
        assert_eq!(lock.reader_count(), 2);
        assert!(lock.try_write().is_none());
        drop(r1);
        drop(r2);
        assert!(lock.try_write().is_some());
    }

    #[test]
    fn writer_excludes_readers() {
        let lock = RwTtasLock::new(0u64);
        let w = lock.write();
        assert!(lock.is_write_locked());
        assert!(lock.try_read().is_none());
        drop(w);
        assert!(lock.try_read().is_some());
    }

    #[test]
    fn get_mut_bypasses_locking() {
        let mut lock = RwTtasLock::new(1u64);
        *lock.get_mut() = 9;
        assert_eq!(*lock.read(), 9);
    }

    #[test]
    fn concurrent_writers_do_not_lose_updates() {
        let lock = Arc::new(RwTtasLock::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *lock.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.read(), 80_000);
    }

    #[test]
    fn readers_and_writers_interleave_consistently() {
        let lock = Arc::new(RwTtasLock::new((0u64, 0u64)));
        let writers: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        let mut g = lock.write();
                        g.0 += 1;
                        g.1 += 1;
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        let g = lock.read();
                        // Both halves must always agree: a torn view would
                        // mean a reader overlapped a writer.
                        assert_eq!(g.0, g.1);
                    }
                })
            })
            .collect();
        for h in writers.into_iter().chain(readers) {
            h.join().unwrap();
        }
        assert_eq!(lock.read().0, 20_000);
    }
}
