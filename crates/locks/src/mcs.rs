//! MCS queue lock.
//!
//! The MCS lock (Mellor-Crummey & Scott) builds a queue of waiting nodes so
//! that each waiter spins on its *own* cache line, removing the
//! single-location bottleneck of simple spinlocks. The paper uses MCS as
//! GLK's high-contention mode (§3).
//!
//! # Implementation notes
//!
//! The classic MCS interface threads a per-acquisition queue node through
//! `lock`/`unlock`. To fit the node-less [`RawLock`] interface (which GLK and
//! GLS need — they hand out plain `lock()`/`unlock()` calls), nodes are drawn
//! from a per-thread pool and the lock records the owner's node in an
//! `owner_node` field that `unlock` consults, the same technique used by the
//! paper's C library. Nodes are recycled through the pool and spilled to a
//! process-wide free list when a thread exits, so node memory is never
//! returned to the allocator while the process runs; this keeps all queue
//! traversals free of use-after-free hazards.
//!
//! Instead of walking the queue to count waiters (which the paper does only
//! at a low sampling rate because it violates the "one thread per node"
//! design goal), the lock maintains an exact holder+waiter counter updated at
//! enqueue/release; see DESIGN.md for the substitution rationale.

// The process-wide node spill list is init-once bookkeeping on the cold
// thread-exit path, deliberately invisible to the model explorer
// (see clippy.toml).
#![allow(clippy::disallowed_types)]

use gls_sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::ptr;
use std::sync::Mutex;

use crate::cache_padded::CachePadded;
use crate::raw::{QueueInformed, RawLock, RawTryLock};
use crate::spin_wait::SpinWait;

/// One queue node; padded so that waiters spinning on `locked` do not share a
/// cache line.
#[derive(Debug)]
struct McsNode {
    /// True while the owning waiter must keep spinning.
    locked: AtomicBool,
    /// Next waiter in the queue, if any.
    next: AtomicPtr<McsNode>,
    _pad: [u8; 48],
}

impl McsNode {
    fn new() -> *mut McsNode {
        Box::into_raw(Box::new(McsNode {
            locked: AtomicBool::new(false),
            next: AtomicPtr::new(ptr::null_mut()),
            _pad: [0; 48],
        }))
    }
}

/// Process-wide spill list: nodes from exiting threads end up here instead of
/// being deallocated, so raw node pointers stay valid for the process
/// lifetime.
static SPILL: Mutex<Vec<usize>> = Mutex::new(Vec::new());

struct NodePool {
    nodes: Vec<*mut McsNode>,
}

impl NodePool {
    fn acquire(&mut self) -> *mut McsNode {
        if let Some(node) = self.nodes.pop() {
            return node;
        }
        if let Ok(mut spill) = SPILL.lock() {
            if let Some(addr) = spill.pop() {
                return addr as *mut McsNode;
            }
        }
        McsNode::new()
    }

    fn release(&mut self, node: *mut McsNode) {
        self.nodes.push(node);
    }
}

impl Drop for NodePool {
    fn drop(&mut self) {
        if let Ok(mut spill) = SPILL.lock() {
            spill.extend(self.nodes.drain(..).map(|p| p as usize));
        }
        // If the spill lock is poisoned the nodes leak, which is benign.
    }
}

thread_local! {
    static POOL: std::cell::RefCell<NodePool> =
        const { std::cell::RefCell::new(NodePool { nodes: Vec::new() }) };
}

fn pool_acquire() -> *mut McsNode {
    POOL.with(|p| p.borrow_mut().acquire())
}

fn pool_release(node: *mut McsNode) {
    POOL.with(|p| p.borrow_mut().release(node));
}

/// An MCS queue spinlock, padded to one cache line.
///
/// # Example
///
/// ```
/// use gls_locks::{McsLock, RawLock};
///
/// let lock = McsLock::new();
/// lock.lock();
/// lock.unlock();
/// ```
#[derive(Debug, Default)]
pub struct McsLock {
    state: CachePadded<McsState>,
}

#[derive(Debug)]
struct McsState {
    /// Last node in the queue (null when free and uncontended).
    tail: AtomicPtr<McsNode>,
    /// Node of the current holder; consulted by `unlock`.
    owner_node: AtomicPtr<McsNode>,
    /// Exact holder+waiter count for [`QueueInformed`].
    queued: AtomicU64,
}

impl Default for McsState {
    fn default() -> Self {
        Self {
            tail: AtomicPtr::new(ptr::null_mut()),
            owner_node: AtomicPtr::new(ptr::null_mut()),
            queued: AtomicU64::new(0),
        }
    }
}

impl McsLock {
    /// Creates an unlocked MCS lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts the nodes currently linked in the queue by traversing it from
    /// the owner, as the paper's sampling does. Bounded by `limit`.
    ///
    /// This is inherently racy (the queue changes underfoot) and intended
    /// only for infrequent statistics sampling by the lock holder.
    pub fn traverse_queue(&self, limit: usize) -> usize {
        let mut count = 0;
        let mut node = self.state.owner_node.load(Ordering::Acquire);
        while !node.is_null() && count < limit {
            count += 1;
            // SAFETY: nodes are never deallocated while the process lives
            // (they are pooled/spilled), so the pointer is always readable;
            // the value may be stale, which is acceptable for sampling.
            node = unsafe { (*node).next.load(Ordering::Acquire) };
        }
        count
    }
}

impl RawLock for McsLock {
    const NAME: &'static str = "MCS";

    #[inline]
    fn lock(&self) {
        self.state.queued.fetch_add(1, Ordering::Relaxed);
        let node = pool_acquire();
        // SAFETY: `node` came from the pool and is exclusively ours until we
        // publish it via the tail swap below.
        unsafe {
            (*node).locked.store(true, Ordering::Relaxed);
            (*node).next.store(ptr::null_mut(), Ordering::Relaxed);
        }
        let prev = self.state.tail.swap(node, Ordering::AcqRel);
        if !prev.is_null() {
            // SAFETY: `prev` is the node of the thread queued directly before
            // us; it cannot be recycled until it has observed our link and
            // handed the lock over, and node memory is never deallocated.
            unsafe {
                (*prev).next.store(node, Ordering::Release);
                let mut wait = SpinWait::new();
                while (*node).locked.load(Ordering::Acquire) {
                    wait.spin();
                }
            }
        }
        self.state.owner_node.store(node, Ordering::Relaxed);
    }

    #[inline]
    fn unlock(&self) {
        let node = self
            .state
            .owner_node
            .swap(ptr::null_mut(), Ordering::Relaxed);
        if node.is_null() {
            // Releasing a free lock: tolerated here; GLS debug mode reports it.
            return;
        }
        // SAFETY: `node` is the holder's node; only the holder (us) touches it
        // until we hand over or detach it, and node memory is never freed.
        unsafe {
            let mut next = (*node).next.load(Ordering::Acquire);
            if next.is_null() {
                // No known successor: try to detach the queue entirely.
                if self
                    .state
                    .tail
                    .compare_exchange(node, ptr::null_mut(), Ordering::Release, Ordering::Relaxed)
                    .is_ok()
                {
                    pool_release(node);
                    self.state.queued.fetch_sub(1, Ordering::Relaxed);
                    return;
                }
                // A successor is in the middle of linking itself; wait for it.
                let mut wait = SpinWait::new();
                loop {
                    next = (*node).next.load(Ordering::Acquire);
                    if !next.is_null() {
                        break;
                    }
                    wait.spin();
                }
            }
            (*next).locked.store(false, Ordering::Release);
            pool_release(node);
        }
        self.state.queued.fetch_sub(1, Ordering::Relaxed);
    }

    fn is_locked(&self) -> bool {
        !self.state.tail.load(Ordering::Relaxed).is_null()
    }
}

impl RawTryLock for McsLock {
    #[inline]
    fn try_lock(&self) -> bool {
        if !self.state.tail.load(Ordering::Relaxed).is_null() {
            return false;
        }
        let node = pool_acquire();
        // SAFETY: the node is exclusively ours until published.
        unsafe {
            (*node).locked.store(true, Ordering::Relaxed);
            (*node).next.store(ptr::null_mut(), Ordering::Relaxed);
        }
        match self.state.tail.compare_exchange(
            ptr::null_mut(),
            node,
            Ordering::AcqRel,
            Ordering::Relaxed,
        ) {
            Ok(_) => {
                self.state.owner_node.store(node, Ordering::Relaxed);
                self.state.queued.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                pool_release(node);
                false
            }
        }
    }
}

impl QueueInformed for McsLock {
    fn queue_length(&self) -> u64 {
        self.state.queued.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_unlock_single_thread() {
        let lock = McsLock::new();
        assert!(!lock.is_locked());
        lock.lock();
        assert!(lock.is_locked());
        assert_eq!(lock.queue_length(), 1);
        lock.unlock();
        assert!(!lock.is_locked());
        assert_eq!(lock.queue_length(), 0);
    }

    #[test]
    fn repeated_acquisition_reuses_nodes() {
        let lock = McsLock::new();
        for _ in 0..10_000 {
            lock.lock();
            lock.unlock();
        }
        assert!(!lock.is_locked());
    }

    #[test]
    fn try_lock_semantics() {
        let lock = McsLock::new();
        assert!(lock.try_lock());
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
    }

    #[test]
    fn unlock_when_free_is_tolerated() {
        let lock = McsLock::new();
        lock.unlock();
        lock.lock();
        lock.unlock();
    }

    #[test]
    fn provides_mutual_exclusion() {
        crate::test_support::check_mutual_exclusion::<McsLock>(8, 20_000);
    }

    #[test]
    fn queue_length_counts_waiters() {
        let lock = Arc::new(McsLock::new());
        lock.lock();
        let mut handles = Vec::new();
        for _ in 0..3 {
            let l = Arc::clone(&lock);
            handles.push(std::thread::spawn(move || {
                l.lock();
                l.unlock();
            }));
        }
        while lock.queue_length() < 4 {
            std::hint::spin_loop();
        }
        assert_eq!(lock.queue_length(), 4);
        lock.unlock();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(lock.queue_length(), 0);
    }

    #[test]
    fn traverse_queue_sees_holder_and_waiters() {
        let lock = Arc::new(McsLock::new());
        lock.lock();
        assert_eq!(lock.traverse_queue(16), 1);
        let l = Arc::clone(&lock);
        let waiter = std::thread::spawn(move || {
            l.lock();
            l.unlock();
        });
        while lock.queue_length() < 2 {
            std::hint::spin_loop();
        }
        // The waiter may not have linked itself yet, so allow 1 or 2 but
        // never more.
        let seen = lock.traverse_queue(16);
        assert!((1..=2).contains(&seen), "unexpected traversal count {seen}");
        lock.unlock();
        waiter.join().unwrap();
    }

    #[test]
    fn many_threads_with_nontrivial_critical_sections() {
        let lock = Arc::new(McsLock::new());
        let counter = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        lock.lock();
                        counter.fetch_add(1, Ordering::Relaxed);
                        gls_runtime::spin_cycles(50);
                        lock.unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 16_000);
    }
}
