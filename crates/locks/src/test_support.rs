//! Shared helpers for the lock tests: a generic mutual-exclusion checker.

use std::cell::UnsafeCell;
use std::sync::Arc;

use crate::raw::RawLock;

/// A counter protected by a raw lock; incremented non-atomically so that any
/// mutual-exclusion violation shows up as a lost update.
struct RawProtected<R: RawLock> {
    lock: R,
    value: UnsafeCell<u64>,
}

// SAFETY: access to `value` is guarded by `lock` in `check_mutual_exclusion`.
unsafe impl<R: RawLock> Sync for RawProtected<R> {}

/// Spawns `threads` threads, each performing `iters` lock-protected
/// non-atomic increments, and asserts that no update was lost.
pub fn check_mutual_exclusion<R: RawLock + 'static>(threads: usize, iters: u64) {
    let shared = Arc::new(RawProtected {
        lock: R::default(),
        value: UnsafeCell::new(0),
    });
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for _ in 0..iters {
                    shared.lock.lock();
                    // SAFETY: we hold the lock, so we have exclusive access.
                    unsafe {
                        let v = shared.value.get();
                        *v += 1;
                    }
                    shared.lock.unlock();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // SAFETY: all worker threads are joined; nothing races this read.
    let total = unsafe { *shared.value.get() };
    assert_eq!(
        total,
        threads as u64 * iters,
        "{} lost updates: mutual exclusion violated by {}",
        threads as u64 * iters - total,
        R::NAME
    );
}
