//! Word-sized blocking mutex parked on the shared parking lot.
//!
//! [`MutexLock`](crate::MutexLock) embeds a full `Mutex + Condvar` pair per
//! lock — two cache lines of state for every lock the middleware manages.
//! [`FutexLock`] is the space-efficient alternative the paper's middleware
//! needs at scale: the entire lock is **one `AtomicU32`** (asserted by a
//! size test), and all wait-queue state lives in the central
//! [`ParkingLot`], keyed by the lock's address — the futex idiom, in
//! userspace.
//!
//! The acquisition protocol is spin-then-park: a bounded
//! [`SpinWait`] phase (blocking through the lot costs far more than a short
//! critical section), then the waiter raises the `PARKED` bit and parks.
//! Waiters wake in FIFO order ([`ParkingLot::unpark_one`]) but re-contend
//! with arriving threads (barging), like a futex mutex — the paper's FIFO
//! admission modes remain ticket/MCS/CLH.

use std::sync::atomic::{AtomicU32, Ordering};

use crate::park::{ParkingLot, DEFAULT_PARK_TOKEN, DEFAULT_UNPARK_TOKEN};
use crate::raw::{QueueInformed, RawLock, RawTryLock};
use crate::spin_wait::SpinWait;

/// The lock-held bit.
const LOCKED: u32 = 1;
/// Set while at least one waiter is (or is about to be) parked.
const PARKED: u32 = 2;

/// Number of bounded-spin rounds before a waiter parks.
const SPIN_ATTEMPTS: u32 = 32;

/// A word-sized blocking (spin-then-park) mutual-exclusion lock.
///
/// The whole lock is one `AtomicU32`; waiters sleep in the global
/// [`ParkingLot`] keyed by this lock's address. Unlike the other locks in
/// this crate it is deliberately **not** cache-padded: its reason to exist
/// is density (millions of live locks), and callers that want padding can
/// wrap it in [`CachePadded`](crate::CachePadded).
///
/// # Example
///
/// ```
/// use gls_locks::{FutexLock, RawLock};
///
/// let lock = FutexLock::new();
/// lock.lock();
/// lock.unlock();
/// assert_eq!(std::mem::size_of::<FutexLock>(), 4);
/// ```
#[derive(Debug, Default)]
pub struct FutexLock {
    state: AtomicU32,
}

impl FutexLock {
    /// Creates an unlocked futex mutex.
    pub const fn new() -> Self {
        Self {
            state: AtomicU32::new(0),
        }
    }

    /// The parking-lot key: the address of the lock word.
    #[inline]
    fn addr(&self) -> usize {
        &self.state as *const AtomicU32 as usize
    }

    #[inline]
    fn try_acquire_fast(&self) -> bool {
        self.state
            .compare_exchange_weak(0, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    #[cold]
    fn lock_slow(&self) {
        let lot = ParkingLot::global();
        let mut wait = SpinWait::new();
        let mut spins = 0u32;
        loop {
            let state = self.state.load(Ordering::Relaxed);
            // Free (parked waiters or not): barge in.
            if state & LOCKED == 0 {
                if self
                    .state
                    .compare_exchange_weak(
                        state,
                        state | LOCKED,
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    return;
                }
                continue;
            }
            // Bounded spin phase while nobody is parked yet; `spin_bounded`
            // never yields — the fallback for long waits is parking below.
            if state & PARKED == 0 {
                if spins < SPIN_ATTEMPTS {
                    spins += 1;
                    wait.spin_bounded();
                    continue;
                }
                if self
                    .state
                    .compare_exchange_weak(
                        state,
                        state | PARKED,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    )
                    .is_err()
                {
                    continue;
                }
            }
            // Sleep until a release hands the parked bit to us. The
            // validation re-check runs under the bucket lock, closing the
            // race with a release that ran between our load and the park.
            lot.park(
                self.addr(),
                DEFAULT_PARK_TOKEN,
                || self.state.load(Ordering::Relaxed) == LOCKED | PARKED,
                || {},
                None,
            );
            // Woken (or the state changed): retry from the top.
            wait.reset();
            spins = 0;
        }
    }

    #[cold]
    fn unlock_slow(&self) {
        // The parked bit is set: wake the longest-parked waiter. The state
        // store happens in the callback, under the bucket lock, so a thread
        // concurrently validating its park sees a consistent word.
        ParkingLot::global().unpark_one(self.addr(), DEFAULT_UNPARK_TOKEN, |result| {
            let state = if result.have_more { PARKED } else { 0 };
            self.state.store(state, Ordering::Release);
        });
    }
}

impl RawLock for FutexLock {
    const NAME: &'static str = "FUTEX";

    #[inline]
    fn lock(&self) {
        if !self.try_acquire_fast() {
            self.lock_slow();
        }
    }

    #[inline]
    fn unlock(&self) {
        if self
            .state
            .compare_exchange(LOCKED, 0, Ordering::Release, Ordering::Relaxed)
            .is_err()
        {
            self.unlock_slow();
        }
    }

    fn is_locked(&self) -> bool {
        self.state.load(Ordering::Relaxed) & LOCKED != 0
    }
}

impl RawTryLock for FutexLock {
    #[inline]
    fn try_lock(&self) -> bool {
        // fetch_or also succeeds on a free-but-parked word (a waiter may be
        // mid-park): barging is part of the protocol.
        self.state.fetch_or(LOCKED, Ordering::Acquire) & LOCKED == 0
    }
}

impl QueueInformed for FutexLock {
    /// Holder plus *parked* waiters. Spinning waiters are invisible — their
    /// wait is bounded to a few microseconds, so the sampled queue GLK uses
    /// for adaptation is dominated by the parked population anyway.
    fn queue_length(&self) -> u64 {
        let held = u64::from(self.state.load(Ordering::Relaxed) & LOCKED != 0);
        held + ParkingLot::global().parked_count(self.addr()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn raw_state_is_one_word() {
        assert_eq!(std::mem::size_of::<FutexLock>(), 4);
        assert_eq!(std::mem::align_of::<FutexLock>(), 4);
    }

    #[test]
    fn lock_unlock_single_thread() {
        let lock = FutexLock::new();
        assert!(!lock.is_locked());
        lock.lock();
        assert!(lock.is_locked());
        assert_eq!(lock.queue_length(), 1);
        lock.unlock();
        assert!(!lock.is_locked());
        assert_eq!(lock.queue_length(), 0);
    }

    #[test]
    fn try_lock_semantics() {
        let lock = FutexLock::new();
        assert!(lock.try_lock());
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
    }

    #[test]
    fn provides_mutual_exclusion() {
        crate::test_support::check_mutual_exclusion::<FutexLock>(8, 20_000);
    }

    #[test]
    fn parked_waiters_are_woken() {
        // Hold the lock long enough that waiters exhaust the spin budget and
        // park in the shared lot, then release and check they all finish.
        let lock = Arc::new(FutexLock::new());
        lock.lock();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&lock);
                std::thread::spawn(move || {
                    l.lock();
                    l.unlock();
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        assert!(lock.queue_length() > 1, "waiters should have parked");
        lock.unlock();
        for h in handles {
            h.join().unwrap();
        }
        assert!(!lock.is_locked());
        assert_eq!(lock.queue_length(), 0);
        assert_eq!(lock.state.load(Ordering::Relaxed), 0, "parked bit cleared");
    }

    #[test]
    fn heavy_handover_does_not_deadlock() {
        let lock = Arc::new(FutexLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..12)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        lock.lock();
                        counter.fetch_add(1, Ordering::Relaxed);
                        lock.unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 60_000);
        assert_eq!(lock.state.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn many_live_locks_share_the_lot() {
        // The space story: 10k live futex locks are 40kB of lock state; all
        // of them park through the same global lot without interference.
        let locks: Arc<Vec<FutexLock>> = Arc::new((0..10_000).map(|_| FutexLock::new()).collect());
        assert_eq!(std::mem::size_of_val(locks.as_slice()), 40_000);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let locks = Arc::clone(&locks);
                std::thread::spawn(move || {
                    for i in 0..10_000usize {
                        let lock = &locks[(i * 31 + t * 7919) % locks.len()];
                        lock.lock();
                        lock.unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for lock in locks.iter() {
            assert!(!lock.is_locked());
        }
    }
}
