//! Word-sized blocking mutex parked on the shared parking lot.
//!
//! [`MutexLock`](crate::MutexLock) embeds a full `Mutex + Condvar` pair per
//! lock — two cache lines of state for every lock the middleware manages.
//! [`FutexLock`] is the space-efficient alternative the paper's middleware
//! needs at scale: the entire lock is **one `AtomicU32`** (asserted by a
//! size test), and all wait-queue state lives in the central
//! [`ParkingLot`], keyed by the lock's address — the futex idiom, in
//! userspace.
//!
//! The acquisition protocol is spin-then-park: a bounded
//! [`SpinWait`] phase (blocking through the lot costs far more than a short
//! critical section), then the waiter raises the `PARKED` bit and parks.
//! Waiters wake in FIFO order ([`ParkingLot::unpark_one`]) and normally
//! re-contend with arriving threads (barging), like a futex mutex — but the
//! bypass is **bounded**: the lock word counts consecutive contended
//! wakeups, and once the streak reaches [`HANDOFF_WAKEUPS`] the release
//! passes ownership *directly* to the woken waiter (a handoff unpark
//! token; the `LOCKED` bit never clears, so bargers cannot steal the slot).
//! A parked waiter can therefore be bypassed at most a bounded number of
//! times before it is served. Strict FIFO admission remains the domain of
//! ticket/MCS/CLH.

use gls_sync::atomic::{AtomicU32, Ordering};

use crate::cohort::{choose_handoff, encode_token, COHORT_BYPASS_LIMIT};
use crate::park::{ParkingLot, DEFAULT_UNPARK_TOKEN};
use crate::raw::{QueueInformed, RawLock, RawTryLock};
use crate::spin_wait::SpinWait;

/// The lock-held bit.
const LOCKED: u32 = 1;
/// Set while at least one waiter is (or is about to be) parked.
const PARKED: u32 = 2;
/// Bits counting consecutive contended wakeups (the handoff streak). Only
/// the releasing holder writes them, and only while `PARKED` is set; an
/// uncontended release always leaves the word at 0.
const STREAK_SHIFT: u32 = 2;
const STREAK_MASK: u32 = 0b111 << STREAK_SHIFT;
/// Bits counting consecutive cohort handoffs that bypassed the queue head
/// in favour of a same-cache-domain waiter (see [`crate::cohort`]). Written
/// under the same holder-only discipline as the streak bits; bounded by
/// [`COHORT_BYPASS_LIMIT`] so a remote queue head cannot starve.
const BYPASS_SHIFT: u32 = 5;
const BYPASS_MASK: u32 = 0b111 << BYPASS_SHIFT;

/// After this many consecutive contended wakeups the release hands the lock
/// directly to the woken waiter instead of letting it re-contend. Bounds
/// how often a parked waiter can be barged past. The model build shortens
/// the streak so exhaustive exploration reaches the handoff path within the
/// preemption budget; the bound-vs-handoff logic is identical.
#[cfg(not(gls_model))]
pub const HANDOFF_WAKEUPS: u32 = 4;
/// Model-build value of the handoff streak bound (see above).
#[cfg(gls_model)]
pub const HANDOFF_WAKEUPS: u32 = 2;

/// Park-token kind tagging a native mutex waiter (distinct from
/// [`DEFAULT_PARK_TOKEN`](crate::park::DEFAULT_PARK_TOKEN), which tags
/// condvar waiters requeued onto the mutex — those must never receive a
/// handoff token they would not understand). Native waiters stamp their
/// cache domain into the token above the kind bits
/// ([`crate::cohort::encode_token`]).
pub const TOKEN_MUTEX_WAITER: usize = 2;

/// Unpark token meaning "the lock is yours": the releaser kept `LOCKED`
/// set on the woken waiter's behalf.
const HANDOFF_UNPARK_TOKEN: usize = 1;

/// Number of bounded-spin rounds before a waiter parks. A single model
/// round covers the spin-vs-park split without exploding the state space.
#[cfg(not(gls_model))]
const SPIN_ATTEMPTS: u32 = 32;
#[cfg(gls_model)]
const SPIN_ATTEMPTS: u32 = 1;

/// A word-sized blocking (spin-then-park) mutual-exclusion lock.
///
/// The whole lock is one `AtomicU32`; waiters sleep in the global
/// [`ParkingLot`] keyed by this lock's address. Unlike the other locks in
/// this crate it is deliberately **not** cache-padded: its reason to exist
/// is density (millions of live locks), and callers that want padding can
/// wrap it in [`CachePadded`](crate::CachePadded).
///
/// # Example
///
/// ```
/// use gls_locks::{FutexLock, RawLock};
///
/// let lock = FutexLock::new();
/// lock.lock();
/// lock.unlock();
/// assert_eq!(std::mem::size_of::<FutexLock>(), 4);
/// ```
#[derive(Debug, Default)]
pub struct FutexLock {
    state: AtomicU32,
    /// Model-only observables (raw std atomics so they add no scheduling
    /// points; both only written under the bucket lock): the current and
    /// the maximum run of *consecutive* handoffs that bypassed the queue
    /// head for a same-domain waiter. [`choose_handoff`] serves the head
    /// once the persisted budget is spent, so the maximum can never exceed
    /// [`COHORT_BYPASS_LIMIT`] — the property the cohort model test checks.
    #[cfg(gls_model)]
    consec_head_bypasses: std::sync::atomic::AtomicU32,
    #[cfg(gls_model)]
    max_head_bypasses: std::sync::atomic::AtomicU32,
}

impl FutexLock {
    /// Creates an unlocked futex mutex.
    pub const fn new() -> Self {
        Self {
            state: AtomicU32::new(0),
            #[cfg(gls_model)]
            consec_head_bypasses: std::sync::atomic::AtomicU32::new(0),
            #[cfg(gls_model)]
            max_head_bypasses: std::sync::atomic::AtomicU32::new(0),
        }
    }

    /// Longest observed run of consecutive head-bypassing cohort handoffs.
    #[cfg(gls_model)]
    pub fn model_max_consecutive_head_bypasses(&self) -> u32 {
        self.max_head_bypasses
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The parking-lot key: the address of the lock word.
    #[inline]
    fn addr(&self) -> usize {
        &self.state as *const AtomicU32 as usize
    }

    /// The address this lock's waiters park under — the key condvar
    /// requeue-on-notify moves waiters onto (see
    /// [`prepare_direct_requeue`]).
    #[inline]
    pub fn park_addr(&self) -> usize {
        self.addr()
    }

    /// Releases the lock and wakes **every** parked waiter instead of one.
    ///
    /// For a holder that is about to stop serving this word — a blocking
    /// -backend migration, or GLK leaving mutex mode — the ordinary
    /// one-waiter wake chain is not enough: it relies on each woken waiter
    /// re-acquiring and re-releasing this word, which a condvar waiter that
    /// was requeued here does not do (it re-acquires through whatever now
    /// serves the lock). Waking everyone lets each waiter re-examine the
    /// world; stragglers that re-contend this word drain through the
    /// ordinary protocol.
    pub fn unlock_and_wake_all(&self) {
        // Clearing the whole word (locked, parked and streak bits) before
        // the broadcast makes concurrent park validations fail, so no new
        // waiter can slip into the queue between the release and the wake
        // and miss both.
        self.state.store(0, Ordering::Release);
        ParkingLot::global().unpark_all(self.addr(), DEFAULT_UNPARK_TOKEN);
    }

    /// The abandonment this lock shipped with *before*
    /// [`unlock_and_wake_all`](Self::unlock_and_wake_all) existed: release
    /// the word and wake only the queue head. A requeued condvar waiter
    /// parked behind the head never re-releases this word, so the one-wake
    /// chain strands everyone behind it — the regression model test drives
    /// this to show the explorer finds that stranding as a deadlock.
    #[cfg(gls_model)]
    pub fn model_unlock_and_wake_one(&self) {
        self.state.store(0, Ordering::Release);
        ParkingLot::global().unpark_one(self.addr(), DEFAULT_UNPARK_TOKEN, |_| {});
    }

    #[inline]
    fn try_acquire_fast(&self) -> bool {
        self.state
            .compare_exchange_weak(0, LOCKED, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    #[cold]
    fn lock_slow(&self) {
        gls_runtime::flight::record(
            gls_runtime::flight::FlightEventKind::SlowPathAcquire,
            self.addr(),
            0,
        );
        let lot = ParkingLot::global();
        let mut wait = SpinWait::new();
        let mut spins = 0u32;
        loop {
            let state = self.state.load(Ordering::Relaxed);
            // Free (parked waiters or not): barge in, preserving the parked
            // and streak bits.
            if state & LOCKED == 0 {
                if self
                    .state
                    .compare_exchange_weak(
                        state,
                        state | LOCKED,
                        Ordering::Acquire,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    return;
                }
                continue;
            }
            // Bounded spin phase while nobody is parked yet; `spin_bounded`
            // never yields — the fallback for long waits is parking below.
            if state & PARKED == 0 {
                if spins < SPIN_ATTEMPTS {
                    spins += 1;
                    wait.spin_bounded();
                    continue;
                }
                if self
                    .state
                    .compare_exchange_weak(
                        state,
                        state | PARKED,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    )
                    .is_err()
                {
                    continue;
                }
            }
            // Sleep until a release hands the parked bit to us. The
            // validation re-check runs under the bucket lock, closing the
            // race with a release that ran between our load and the park.
            // The park token carries our cache domain so a handoff release
            // can prefer a same-domain waiter (cohort handoff).
            let result = lot.park(
                self.addr(),
                encode_token(
                    TOKEN_MUTEX_WAITER,
                    Some(gls_runtime::topology::current_domain()),
                ),
                || {
                    let s = self.state.load(Ordering::Relaxed);
                    s & (LOCKED | PARKED) == LOCKED | PARKED
                },
                || {},
                None,
            );
            // A handoff wake means the releaser kept LOCKED set on our
            // behalf: the lock is ours, no re-contention.
            if result == crate::park::ParkResult::Unparked(HANDOFF_UNPARK_TOKEN) {
                return;
            }
            // Woken normally (or the state changed): retry from the top.
            wait.reset();
            spins = 0;
        }
    }

    #[cold]
    fn unlock_slow(&self, cohort: bool) {
        // The parked bit is set: wake a waiter. Only the holder writes the
        // streak and bypass bits, so reading them outside the bucket lock is
        // race-free. The state store happens in the callback, under the
        // bucket lock, so a thread concurrently validating its park sees a
        // consistent word.
        let word = self.state.load(Ordering::Relaxed);
        let streak = (word & STREAK_MASK) >> STREAK_SHIFT;
        let bypass = (word & BYPASS_MASK) >> BYPASS_SHIFT;
        let handoff_due = streak + 1 >= HANDOFF_WAKEUPS;
        let handoff = std::cell::Cell::new(false);
        let bypassed = std::cell::Cell::new(false);
        ParkingLot::global().unpark_choose_with(
            self.addr(),
            |tokens| {
                let choice = if handoff_due {
                    // Streak exhausted: hand the lock over. With cohort
                    // handoff a same-domain waiter may be preferred over a
                    // remote queue head, within the bypass budget; without
                    // it the head is served (the single-domain policy).
                    // Requeued condvar waiters (kind 0) always get an
                    // ordinary wake — they would not understand a handoff.
                    let releaser_domain = if cohort {
                        gls_runtime::topology::current_domain()
                    } else {
                        usize::MAX // matches no stamped domain: head wins
                    };
                    choose_handoff(
                        tokens,
                        TOKEN_MUTEX_WAITER,
                        releaser_domain,
                        if cohort { bypass } else { COHORT_BYPASS_LIMIT },
                        COHORT_BYPASS_LIMIT,
                    )?
                } else {
                    // Streak still building: ordinary FIFO wake-and-recontend.
                    if tokens.is_empty() {
                        return None;
                    }
                    crate::cohort::HandoffChoice {
                        index: 0,
                        handoff: false,
                        bypassed_head: false,
                    }
                };
                handoff.set(choice.handoff);
                bypassed.set(choice.bypassed_head);
                let unpark_token = if choice.handoff {
                    HANDOFF_UNPARK_TOKEN
                } else {
                    DEFAULT_UNPARK_TOKEN
                };
                Some((choice.index, unpark_token))
            },
            |result| {
                let state = if result.unparked == 0 {
                    // Nobody left (e.g. a requeued waiter timed out): plain
                    // release, streak over.
                    0
                } else if handoff.get() {
                    // Ownership transfers to the woken waiter: LOCKED stays
                    // set so bargers cannot steal the slot; streak resets.
                    // The bypass counter advances when the head was
                    // bypassed for a local waiter and resets when the head
                    // was served, bounding consecutive bypasses.
                    let next_bypass = if bypassed.get() {
                        (bypass + 1).min(BYPASS_MASK >> BYPASS_SHIFT)
                    } else {
                        0
                    };
                    #[cfg(gls_model)]
                    {
                        use std::sync::atomic::Ordering::Relaxed;
                        if bypassed.get() {
                            let run = self.consec_head_bypasses.fetch_add(1, Relaxed) + 1;
                            self.max_head_bypasses.fetch_max(run, Relaxed);
                        } else {
                            self.consec_head_bypasses.store(0, Relaxed);
                        }
                    }
                    LOCKED
                        | if result.have_more { PARKED } else { 0 }
                        | (next_bypass << BYPASS_SHIFT)
                } else if result.have_more {
                    // Contended wakeup with waiters remaining: release and
                    // advance the streak (saturating at the mask); the
                    // bypass history survives until the next handoff.
                    let next = (streak + 1).min(STREAK_MASK >> STREAK_SHIFT);
                    PARKED | (next << STREAK_SHIFT) | (bypass << BYPASS_SHIFT)
                } else {
                    0
                };
                self.state.store(state, Ordering::Release);
            },
        );
        // Telemetry outside the bucket critical section: a direct handoff
        // happened iff the choose closure picked one (it only runs when a
        // waiter was actually woken).
        if handoff.get() {
            crate::telemetry::note_handoff(bypassed.get());
            gls_runtime::flight::record(
                gls_runtime::flight::FlightEventKind::Handoff,
                self.addr(),
                u64::from(bypassed.get()),
            );
        }
    }

    /// Releases the lock, choosing the handoff policy explicitly: with
    /// `cohort` set, handoffs prefer a waiter parked from the releaser's
    /// cache domain (bounded by [`COHORT_BYPASS_LIMIT`] consecutive
    /// bypasses); without it, handoffs always serve the queue head.
    /// [`RawLock::unlock`] is `unlock_cohort(true)`.
    #[inline]
    pub fn unlock_cohort(&self, cohort: bool) {
        if self
            .state
            .compare_exchange(LOCKED, 0, Ordering::Release, Ordering::Relaxed)
            .is_err()
        {
            self.unlock_slow(cohort);
        }
    }
}

/// Part of condvar requeue-on-notify: under the parking-lot bucket lock of
/// `addr` — the address of a [`FutexLock`] state word — atomically raises
/// the parked bit **iff the lock is currently held**. Returns `true` when
/// raised (a waiter requeued onto `addr` is then guaranteed a wakeup from
/// the holder's release, whose fast path cannot succeed with the parked bit
/// set) or `false` when the lock is free (the caller must wake the waiter
/// instead of requeueing it, or it could sleep on a mutex nobody holds).
///
/// # Safety
///
/// `addr` must be the address of the `AtomicU32` state word of a live
/// [`FutexLock`], and the caller must hold the parking-lot bucket lock of
/// `addr` (e.g. inside [`ParkingLot::unpark_requeue_with`]'s decide
/// closure) so the decision is atomic with park validation and with the
/// release path's state store.
pub unsafe fn prepare_direct_requeue(addr: usize) -> bool {
    // SAFETY: per the contract, `addr` points to a live AtomicU32.
    let state = unsafe { &*(addr as *const AtomicU32) };
    let mut s = state.load(Ordering::Relaxed);
    loop {
        if s & LOCKED == 0 {
            return false;
        }
        if s & PARKED != 0 {
            return true;
        }
        match state.compare_exchange_weak(s, s | PARKED, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return true,
            Err(actual) => s = actual,
        }
    }
}

/// Companion to [`prepare_direct_requeue`] for broadcast wait-morphing:
/// raises the parked bit **unconditionally** (even on a free lock). Used
/// when waiters were just requeued onto `addr` behind one woken waiter that
/// is about to acquire the mutex: every subsequent release must take the
/// slow path and wake the next requeued waiter, even though the word was
/// free at requeue time. A spuriously raised bit (all requeued waiters
/// time out) self-heals: the next slow-path release finds nobody and
/// clears it.
///
/// # Safety
///
/// Same contract as [`prepare_direct_requeue`]: `addr` must be the state
/// word of a live [`FutexLock`] and the caller must hold its parking-lot
/// bucket lock.
pub unsafe fn mark_parked_for_requeue(addr: usize) {
    // SAFETY: per the contract, `addr` points to a live AtomicU32.
    let state = unsafe { &*(addr as *const AtomicU32) };
    state.fetch_or(PARKED, Ordering::Relaxed);
}

impl RawLock for FutexLock {
    const NAME: &'static str = "FUTEX";

    #[inline]
    fn lock(&self) {
        if !self.try_acquire_fast() {
            self.lock_slow();
        }
    }

    #[inline]
    fn unlock(&self) {
        self.unlock_cohort(true);
    }

    fn is_locked(&self) -> bool {
        self.state.load(Ordering::Relaxed) & LOCKED != 0
    }
}

impl RawTryLock for FutexLock {
    #[inline]
    fn try_lock(&self) -> bool {
        // fetch_or also succeeds on a free-but-parked word (a waiter may be
        // mid-park): barging is part of the protocol.
        self.state.fetch_or(LOCKED, Ordering::Acquire) & LOCKED == 0
    }
}

impl QueueInformed for FutexLock {
    /// Holder plus *parked* waiters. Spinning waiters are invisible — their
    /// wait is bounded to a few microseconds, so the sampled queue GLK uses
    /// for adaptation is dominated by the parked population anyway.
    fn queue_length(&self) -> u64 {
        let held = u64::from(self.state.load(Ordering::Relaxed) & LOCKED != 0);
        held + ParkingLot::global().parked_count(self.addr()) as u64
    }
}

#[cfg(test)]
// Raw std sync and wall-clock sleeps are fine in stress tests: they pace
// real threads, not modeled ones (see clippy.toml).
#[allow(clippy::disallowed_types, clippy::disallowed_methods)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn raw_state_is_one_word() {
        assert_eq!(std::mem::size_of::<FutexLock>(), 4);
        assert_eq!(std::mem::align_of::<FutexLock>(), 4);
    }

    #[test]
    fn lock_unlock_single_thread() {
        let lock = FutexLock::new();
        assert!(!lock.is_locked());
        lock.lock();
        assert!(lock.is_locked());
        assert_eq!(lock.queue_length(), 1);
        lock.unlock();
        assert!(!lock.is_locked());
        assert_eq!(lock.queue_length(), 0);
    }

    #[test]
    fn try_lock_semantics() {
        let lock = FutexLock::new();
        assert!(lock.try_lock());
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
    }

    #[test]
    fn provides_mutual_exclusion() {
        crate::test_support::check_mutual_exclusion::<FutexLock>(8, 20_000);
    }

    #[test]
    fn parked_waiters_are_woken() {
        // Hold the lock long enough that waiters exhaust the spin budget and
        // park in the shared lot, then release and check they all finish.
        let lock = Arc::new(FutexLock::new());
        lock.lock();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&lock);
                std::thread::spawn(move || {
                    l.lock();
                    l.unlock();
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(50));
        assert!(lock.queue_length() > 1, "waiters should have parked");
        lock.unlock();
        for h in handles {
            h.join().unwrap();
        }
        assert!(!lock.is_locked());
        assert_eq!(lock.queue_length(), 0);
        assert_eq!(lock.state.load(Ordering::Relaxed), 0, "parked bit cleared");
    }

    #[test]
    fn heavy_handover_does_not_deadlock() {
        let lock = Arc::new(FutexLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..12)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        lock.lock();
                        counter.fetch_add(1, Ordering::Relaxed);
                        lock.unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 60_000);
        assert_eq!(lock.state.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn parked_waiter_bypass_is_bounded_under_oversubscription() {
        // Regression test for unbounded barging: a parked waiter must get
        // the lock after a bounded number of contended wakeups even while
        // bargers keep stealing the word. The handoff streak guarantees
        // that every HANDOFF_WAKEUPS-th consecutive contended wakeup hands
        // the lock directly to the queue head (LOCKED never clears, so the
        // bargers cannot steal that slot); without it this test livelocks
        // the victim for unbounded stretches under oversubscription.
        use std::sync::atomic::AtomicBool;
        let lock = Arc::new(FutexLock::new());
        let victim_done = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        lock.lock();
        let victim = {
            let lock = Arc::clone(&lock);
            let done = Arc::clone(&victim_done);
            std::thread::spawn(move || {
                lock.lock();
                done.store(true, Ordering::Release);
                lock.unlock();
            })
        };
        // Wait until the victim is parked (holder + parked waiter >= 2).
        while lock.queue_length() < 2 {
            std::thread::yield_now();
        }
        let bargers: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut ops = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        lock.lock();
                        std::hint::spin_loop();
                        lock.unlock();
                        ops += 1;
                    }
                    ops
                })
            })
            .collect();
        lock.unlock();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while !victim_done.load(Ordering::Acquire) {
            assert!(
                std::time::Instant::now() < deadline,
                "parked waiter starved behind barging threads"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = bargers.into_iter().map(|h| h.join().unwrap()).sum();
        victim.join().unwrap();
        assert!(total > 0, "bargers must have run");
        assert_eq!(lock.state.load(Ordering::Relaxed), 0, "word fully clears");
    }

    #[test]
    fn handoff_keeps_the_word_consistent_under_churn() {
        // Heavy handover traffic drives the streak through handoffs over
        // and over; mutual exclusion and full word cleanup must survive.
        let lock = Arc::new(FutexLock::new());
        struct Shared(std::cell::UnsafeCell<u64>);
        // SAFETY: the cell is only touched while holding the lock under
        // test; that exclusion is exactly what the test verifies.
        unsafe impl Sync for Shared {}
        let shared = Arc::new(Shared(std::cell::UnsafeCell::new(0)));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        lock.lock();
                        // Non-atomic increment: lost updates reveal a
                        // broken handoff (two owners at once).
                        // SAFETY: written while holding the lock under test.
                        unsafe { *shared.0.get() += 1 };
                        lock.unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // SAFETY: all worker threads are joined; nothing races this read.
        assert_eq!(unsafe { *shared.0.get() }, 80_000);
        assert_eq!(lock.state.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn direct_requeue_preparation_follows_the_lock_state() {
        let lock = FutexLock::new();
        // Free lock: a requeue must not be prepared (the waiter would
        // sleep on a mutex nobody will release).
        // SAFETY: the lock word is live and the test is single-threaded, so
        // the decision cannot race with a parker or a releaser (the reason
        // the contract wants the bucket lock held).
        assert!(!unsafe { prepare_direct_requeue(lock.addr()) });
        lock.lock();
        // Held lock: the parked bit is raised, so the eventual release
        // cannot take the fast path and will wake the requeued waiter.
        // SAFETY: the lock word is live and the test is single-threaded, so
        // the decision cannot race with a parker or a releaser (the reason
        // the contract wants the bucket lock held).
        assert!(unsafe { prepare_direct_requeue(lock.addr()) });
        assert_eq!(lock.state.load(Ordering::Relaxed), LOCKED | PARKED);
        // Idempotent while held.
        // SAFETY: the lock word is live and the test is single-threaded, so
        // the decision cannot race with a parker or a releaser (the reason
        // the contract wants the bucket lock held).
        assert!(unsafe { prepare_direct_requeue(lock.addr()) });
        // The release wakes nobody (nothing is actually parked) and heals
        // the word back to zero.
        lock.unlock();
        assert_eq!(lock.state.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn many_live_locks_share_the_lot() {
        // The space story: 10k live futex locks are 40kB of lock state; all
        // of them park through the same global lot without interference.
        let locks: Arc<Vec<FutexLock>> = Arc::new((0..10_000).map(|_| FutexLock::new()).collect());
        assert_eq!(std::mem::size_of_val(locks.as_slice()), 40_000);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let locks = Arc::clone(&locks);
                std::thread::spawn(move || {
                    for i in 0..10_000usize {
                        let lock = &locks[(i * 31 + t * 7919) % locks.len()];
                        lock.lock();
                        lock.unlock();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for lock in locks.iter() {
            assert!(!lock.is_locked());
        }
    }
}
