//! Test-and-set spinlock.
//!
//! The simplest possible lock: one atomic flag, acquired with an atomic swap.
//! Every acquisition attempt writes the lock cache line, so under contention
//! the coherence traffic is maximal — this is the baseline the paper's more
//! scalable locks improve on.

use gls_sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::cache_padded::CachePadded;
use crate::raw::{QueueInformed, RawLock, RawTryLock};
use crate::spin_wait::SpinWait;

/// A test-and-set (TAS) spinlock, padded to one cache line.
///
/// # Example
///
/// ```
/// use gls_locks::{RawLock, RawTryLock, TasLock};
///
/// let lock = TasLock::new();
/// assert!(lock.try_lock());
/// assert!(!lock.try_lock());
/// lock.unlock();
/// ```
#[derive(Debug, Default)]
pub struct TasLock {
    state: CachePadded<TasState>,
}

#[derive(Debug, Default)]
struct TasState {
    locked: AtomicBool,
    /// Holder plus waiters, for [`QueueInformed`].
    queued: AtomicU64,
}

impl TasLock {
    /// Creates an unlocked TAS lock.
    pub fn new() -> Self {
        Self::default()
    }
}

impl RawLock for TasLock {
    const NAME: &'static str = "TAS";

    #[inline]
    fn lock(&self) {
        self.state.queued.fetch_add(1, Ordering::Relaxed);
        let mut wait = SpinWait::new();
        while self.state.locked.swap(true, Ordering::Acquire) {
            wait.spin();
        }
    }

    #[inline]
    fn unlock(&self) {
        self.state.locked.store(false, Ordering::Release);
        self.state.queued.fetch_sub(1, Ordering::Relaxed);
    }

    fn is_locked(&self) -> bool {
        self.state.locked.load(Ordering::Relaxed)
    }
}

impl RawTryLock for TasLock {
    #[inline]
    fn try_lock(&self) -> bool {
        let acquired = !self.state.locked.swap(true, Ordering::Acquire);
        if acquired {
            self.state.queued.fetch_add(1, Ordering::Relaxed);
        }
        acquired
    }
}

impl QueueInformed for TasLock {
    fn queue_length(&self) -> u64 {
        self.state.queued.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_unlock_single_thread() {
        let lock = TasLock::new();
        assert!(!lock.is_locked());
        lock.lock();
        assert!(lock.is_locked());
        assert_eq!(lock.queue_length(), 1);
        lock.unlock();
        assert!(!lock.is_locked());
        assert_eq!(lock.queue_length(), 0);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let lock = TasLock::new();
        lock.lock();
        assert!(!lock.try_lock());
        lock.unlock();
        assert!(lock.try_lock());
        lock.unlock();
    }

    #[test]
    fn provides_mutual_exclusion() {
        crate::test_support::check_mutual_exclusion::<TasLock>(8, 20_000);
    }

    #[test]
    fn queue_length_counts_waiters() {
        let lock = Arc::new(TasLock::new());
        lock.lock();
        let l2 = Arc::clone(&lock);
        let waiter = std::thread::spawn(move || {
            l2.lock();
            l2.unlock();
        });
        // Wait for the spawned thread to start queuing.
        while lock.queue_length() < 2 {
            std::hint::spin_loop();
        }
        assert!(lock.queue_length() >= 2);
        lock.unlock();
        waiter.join().unwrap();
        assert_eq!(lock.queue_length(), 0);
    }
}
