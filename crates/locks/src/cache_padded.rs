//! Cache-line padding.
//!
//! The paper's methodology pads every lock to 64 bytes (one cache line) "for
//! fairness and for avoiding false cache-line sharing" (§3.2). [`CachePadded`]
//! aligns and pads its contents to [`CACHE_LINE_BYTES`].

/// Size of a cache line on the paper's target platforms (x86-64).
pub const CACHE_LINE_BYTES: usize = 64;

/// Pads and aligns `T` to a cache-line boundary.
///
/// # Example
///
/// ```
/// use gls_locks::CachePadded;
/// use std::sync::atomic::AtomicU64;
///
/// let slot: CachePadded<AtomicU64> = CachePadded::new(AtomicU64::new(0));
/// assert_eq!(std::mem::align_of_val(&slot), 64);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(align(64))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in a cache-line-aligned container.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the wrapper and returns the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_a_cache_line() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), CACHE_LINE_BYTES);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= CACHE_LINE_BYTES);
    }

    #[test]
    fn deref_reaches_inner_value() {
        let mut p = CachePadded::new(5u32);
        assert_eq!(*p, 5);
        *p = 7;
        assert_eq!(p.into_inner(), 7);
    }

    #[test]
    fn from_and_default() {
        let p: CachePadded<u64> = 9u64.into();
        assert_eq!(*p, 9);
        let d: CachePadded<u64> = CachePadded::default();
        assert_eq!(*d, 0);
    }
}
