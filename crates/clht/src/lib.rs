//! A CLHT-style concurrent hash table.
//!
//! GLS is "essentially a cache for locating the lock object that corresponds
//! to an address" (§4.1) and is built on a modified CLHT hash table with the
//! properties the service needs:
//!
//! 1. cache-line-sized buckets, so operations typically complete with at most
//!    one cache-line transfer;
//! 2. searching for a key is a **read-only, wait-free** operation;
//! 3. failing to insert a key is also read-only and wait-free;
//! 4. the table is resizable.
//!
//! This crate reproduces that data structure for `usize → usize` mappings
//! (GLS stores the address of a lock object as the value). Updates take a
//! per-bucket spinlock; lookups never write shared memory.
//!
//! # Example
//!
//! ```
//! use gls_clht::Clht;
//!
//! let table = Clht::new();
//! assert_eq!(table.get(42), None);
//! let v = table.put_if_absent(42, || 1000);
//! assert_eq!(v, 1000);
//! // A second insert of the same key returns the existing value.
//! assert_eq!(table.put_if_absent(42, || 2000), 1000);
//! assert_eq!(table.get(42), Some(1000));
//! assert_eq!(table.remove(42), Some(1000));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bucket;
mod table;

pub use table::{Clht, ClhtStats};

#[cfg(test)]
mod proptests;
