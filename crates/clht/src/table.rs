//! The resizable CLHT table built from cache-line buckets.

// The retired-table list is cold resize-path bookkeeping; the table is
// not a modeled protocol, so raw std sync stays (see clippy.toml).
#![allow(clippy::disallowed_types)]

use std::ptr;
use std::sync::Mutex;

use gls_sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};

use gls_locks::{MutexLock, RawLock};

use crate::bucket::{Bucket, EMPTY_KEY, ENTRIES_PER_BUCKET};

/// Default number of buckets in a fresh table (a power of two).
const DEFAULT_BUCKETS: usize = 64;

/// Maximum number of overflow buckets chained to one primary bucket before an
/// insert forces a resize instead.
const MAX_CHAIN: usize = 2;

/// Resize when the element count exceeds this fraction of slot capacity.
const RESIZE_OCCUPANCY: f64 = 0.66;

/// Fibonacci multiplicative hash of an address.
#[inline]
fn hash(key: usize) -> usize {
    key.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

struct Table {
    buckets: Box<[Bucket]>,
    mask: usize,
    /// Set (while holding the resize lock) before this table's contents are
    /// migrated; writers that observe it back off and retry on the new table.
    resizing: AtomicBool,
    /// Number of elements currently stored (maintained under bucket locks).
    elements: AtomicUsize,
}

impl Table {
    fn with_buckets(n: usize) -> Box<Table> {
        debug_assert!(n.is_power_of_two());
        let buckets: Vec<Bucket> = (0..n).map(|_| Bucket::new()).collect();
        Box::new(Table {
            buckets: buckets.into_boxed_slice(),
            mask: n - 1,
            resizing: AtomicBool::new(false),
            elements: AtomicUsize::new(0),
        })
    }

    fn bucket_for(&self, key: usize) -> &Bucket {
        &self.buckets[hash(key) & self.mask]
    }

    /// Walks a bucket chain looking for `key` (wait-free).
    fn find(&self, key: usize) -> Option<usize> {
        let mut bucket = self.bucket_for(key);
        loop {
            if let Some(v) = bucket.find(key) {
                return Some(v);
            }
            let next = bucket.next.load(Ordering::Acquire);
            if next.is_null() {
                return None;
            }
            // SAFETY: overflow buckets are only freed when the table is
            // dropped, and the table outlives every reference handed out.
            bucket = unsafe { &*next };
        }
    }

    /// Slot capacity of this table including overflow buckets is not tracked;
    /// the resize policy uses primary-slot capacity, which is what the paper's
    /// occupancy numbers refer to.
    fn slot_capacity(&self) -> usize {
        self.buckets.len() * ENTRIES_PER_BUCKET
    }
}

impl Drop for Table {
    fn drop(&mut self) {
        // Free the overflow chains.
        for bucket in self.buckets.iter() {
            let mut next = bucket.next.swap(ptr::null_mut(), Ordering::Relaxed);
            while !next.is_null() {
                // SAFETY: overflow buckets were allocated with Box::into_raw
                // and are only reachable from this chain.
                let boxed = unsafe { Box::from_raw(next) };
                next = boxed.next.swap(ptr::null_mut(), Ordering::Relaxed);
            }
        }
    }
}

/// Point-in-time statistics about a [`Clht`] instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClhtStats {
    /// Number of primary buckets.
    pub buckets: usize,
    /// Number of stored key/value pairs.
    pub elements: usize,
    /// Fraction of primary slots in use (the paper reports 60–70% typical).
    pub occupancy: f64,
    /// Number of times the table has grown.
    pub expansions: usize,
}

/// A concurrent `usize → usize` hash table with wait-free lookups.
///
/// See the [crate-level documentation](crate) for the design and an example.
pub struct Clht {
    table: AtomicPtr<Table>,
    resize_lock: MutexLock,
    /// Tables replaced by resizes; kept alive so concurrent wait-free readers
    /// never observe freed memory, reclaimed on drop.
    retired: Mutex<Vec<*mut Table>>,
    expansions: AtomicUsize,
}

// SAFETY: all shared state is accessed through atomics, bucket locks, or the
// retired-list mutex.
unsafe impl Send for Clht {}
unsafe impl Sync for Clht {}

impl Clht {
    /// Creates a table with the default initial capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_BUCKETS * ENTRIES_PER_BUCKET)
    }

    /// Creates a table able to hold roughly `capacity` elements before its
    /// first resize.
    pub fn with_capacity(capacity: usize) -> Self {
        let buckets = (capacity / ENTRIES_PER_BUCKET)
            .next_power_of_two()
            .max(DEFAULT_BUCKETS);
        Self {
            table: AtomicPtr::new(Box::into_raw(Table::with_buckets(buckets))),
            resize_lock: MutexLock::new(),
            retired: Mutex::new(Vec::new()),
            expansions: AtomicUsize::new(0),
        }
    }

    fn current(&self) -> &Table {
        // SAFETY: the current table is only retired (never freed) while the
        // Clht is alive.
        unsafe { &*self.table.load(Ordering::Acquire) }
    }

    /// Wait-free lookup.
    pub fn get(&self, key: usize) -> Option<usize> {
        assert_ne!(key, EMPTY_KEY, "key 0 (NULL) is reserved");
        self.current().find(key)
    }

    /// Returns the value for `key`, inserting `make()` if the key is absent.
    ///
    /// This mirrors the modified `clht_put` used by `gls_lock`: "create and
    /// initialize a new lock object for addr if addr is not found; if addr
    /// already exists, the corresponding lock object is returned" (§4.1).
    /// `make` is called at most once, and only if the key is actually
    /// inserted.
    pub fn put_if_absent(&self, key: usize, make: impl FnOnce() -> usize) -> usize {
        assert_ne!(key, EMPTY_KEY, "key 0 (NULL) is reserved");
        let mut make = Some(make);
        loop {
            let table_ptr = self.table.load(Ordering::Acquire);
            // SAFETY: tables are never freed while the Clht is alive.
            let table = unsafe { &*table_ptr };

            // Fast path: wait-free read-only probe.
            if let Some(existing) = table.find(key) {
                return existing;
            }

            let bucket = table.bucket_for(key);
            bucket.lock();
            // A resize may have started (or finished) while we were
            // acquiring the bucket lock; in either case our update could be
            // lost, so back off and retry on the new table.
            if table.resizing.load(Ordering::SeqCst)
                || self.table.load(Ordering::Acquire) != table_ptr
            {
                bucket.unlock();
                self.wait_for_table_change(table_ptr);
                continue;
            }

            // Re-probe under the lock (another thread may have inserted).
            if let Some(existing) = table.find(key) {
                bucket.unlock();
                return existing;
            }

            // Find a slot in the chain, extending the chain if every existing
            // bucket is full. Insertion always succeeds once `make` has been
            // called (so lazily-created lock objects are never orphaned); a
            // long chain merely schedules a resize afterwards.
            let value = (make.take().expect("make() already consumed"))();
            let mut current = bucket;
            let mut chain_len = 0usize;
            loop {
                if current.insert(key, value) {
                    break;
                }
                let next = current.next.load(Ordering::Acquire);
                if next.is_null() {
                    let fresh = Box::into_raw(Box::new(Bucket::new()));
                    // SAFETY: freshly allocated, exclusively ours until
                    // published on the chain below.
                    unsafe {
                        (*fresh).insert(key, value);
                    }
                    current.next.store(fresh, Ordering::Release);
                    chain_len += 1;
                    break;
                }
                chain_len += 1;
                // SAFETY: overflow buckets live as long as the table.
                current = unsafe { &*next };
            }

            table.elements.fetch_add(1, Ordering::Relaxed);
            bucket.unlock();
            if chain_len >= MAX_CHAIN {
                self.resize(table_ptr);
            } else {
                self.maybe_resize(table_ptr);
            }
            return value;
        }
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&self, key: usize) -> Option<usize> {
        assert_ne!(key, EMPTY_KEY, "key 0 (NULL) is reserved");
        loop {
            let table_ptr = self.table.load(Ordering::Acquire);
            // SAFETY: tables are never freed while the Clht is alive.
            let table = unsafe { &*table_ptr };
            let bucket = table.bucket_for(key);
            bucket.lock();
            if table.resizing.load(Ordering::SeqCst)
                || self.table.load(Ordering::Acquire) != table_ptr
            {
                bucket.unlock();
                self.wait_for_table_change(table_ptr);
                continue;
            }
            let mut current = bucket;
            let removed = loop {
                if let Some(v) = current.remove(key) {
                    break Some(v);
                }
                let next = current.next.load(Ordering::Acquire);
                if next.is_null() {
                    break None;
                }
                // SAFETY: overflow buckets live as long as the table.
                current = unsafe { &*next };
            };
            if removed.is_some() {
                table.elements.fetch_sub(1, Ordering::Relaxed);
            }
            bucket.unlock();
            return removed;
        }
    }

    /// Whether `key` is present (wait-free).
    pub fn contains(&self, key: usize) -> bool {
        self.get(key).is_some()
    }

    /// Number of stored elements.
    pub fn len(&self) -> usize {
        self.current().elements.load(Ordering::Relaxed)
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Calls `f` for every key/value pair (racy snapshot; concurrent updates
    /// may or may not be observed).
    pub fn for_each(&self, mut f: impl FnMut(usize, usize)) {
        let table = self.current();
        for bucket in table.buckets.iter() {
            let mut current: &Bucket = bucket;
            loop {
                current.for_each(&mut f);
                let next = current.next.load(Ordering::Acquire);
                if next.is_null() {
                    break;
                }
                // SAFETY: overflow buckets live as long as the table.
                current = unsafe { &*next };
            }
        }
    }

    /// Current table statistics.
    pub fn stats(&self) -> ClhtStats {
        let table = self.current();
        let elements = table.elements.load(Ordering::Relaxed);
        ClhtStats {
            buckets: table.buckets.len(),
            elements,
            occupancy: elements as f64 / table.slot_capacity() as f64,
            expansions: self.expansions.load(Ordering::Relaxed),
        }
    }

    fn wait_for_table_change(&self, old: *mut Table) {
        let mut wait = gls_locks::SpinWait::new();
        while self.table.load(Ordering::Acquire) == old {
            wait.spin();
        }
    }

    fn maybe_resize(&self, table_ptr: *mut Table) {
        // SAFETY: tables are never freed while the Clht is alive.
        let table = unsafe { &*table_ptr };
        let elements = table.elements.load(Ordering::Relaxed);
        if (elements as f64) > RESIZE_OCCUPANCY * table.slot_capacity() as f64 {
            self.resize(table_ptr);
        }
    }

    /// Doubles the table size, migrating all entries. No-op if `old_ptr` is no
    /// longer the current table (someone else already resized).
    fn resize(&self, old_ptr: *mut Table) {
        self.resize_with(old_ptr, true);
    }

    fn resize_with(&self, old_ptr: *mut Table, set_resizing_flag: bool) {
        self.resize_lock.lock();
        if self.table.load(Ordering::Acquire) != old_ptr {
            self.resize_lock.unlock();
            return;
        }
        // SAFETY: `old_ptr` is the current table and cannot be freed.
        let old = unsafe { &*old_ptr };
        // The flag must go up before any bucket is migrated: a writer that
        // takes its bucket lock after migration but before the new table is
        // published would otherwise insert into the old table and lose the
        // update. (`set_resizing_flag = false` exists only for the model
        // regression test that re-seeds exactly that bug.)
        if set_resizing_flag {
            old.resizing.store(true, Ordering::SeqCst);
        }

        let new_table = Table::with_buckets(old.buckets.len() * 2);
        let mut migrated = 0usize;
        for bucket in old.buckets.iter() {
            // Taking each bucket lock fences out any writer that sneaked in
            // before it observed the `resizing` flag.
            bucket.lock();
            let mut current: &Bucket = bucket;
            loop {
                current.for_each(&mut |k, v| {
                    let target = new_table.bucket_for(k);
                    let mut t: &Bucket = target;
                    loop {
                        if t.insert(k, v) {
                            migrated += 1;
                            return;
                        }
                        let next = t.next.load(Ordering::Relaxed);
                        if next.is_null() {
                            let fresh = Box::into_raw(Box::new(Bucket::new()));
                            // SAFETY: freshly allocated and unpublished.
                            unsafe {
                                (*fresh).insert(k, v);
                            }
                            t.next.store(fresh, Ordering::Relaxed);
                            migrated += 1;
                            return;
                        }
                        // SAFETY: chain buckets of the (unpublished) new table.
                        t = unsafe { &*next };
                    }
                });
                let next = current.next.load(Ordering::Acquire);
                if next.is_null() {
                    break;
                }
                // SAFETY: overflow buckets live as long as the table.
                current = unsafe { &*next };
            }
            bucket.unlock();
        }
        new_table.elements.store(migrated, Ordering::Relaxed);
        let new_ptr = Box::into_raw(new_table);
        self.table.store(new_ptr, Ordering::Release);
        self.expansions.fetch_add(1, Ordering::Relaxed);
        self.retired
            .lock()
            .expect("retired-table list poisoned")
            .push(old_ptr);
        self.resize_lock.unlock();
    }
}

/// Model-checker entry points. The exhaustive explorer needs a table tiny
/// enough that a handful of inserts reaches a resize, and direct control
/// over *when* the resize runs (instead of waiting for the occupancy
/// trigger), so these bypass the production sizing policy. Compiled only
/// under `--cfg gls_model`.
#[cfg(gls_model)]
impl Clht {
    /// Creates a table with exactly `buckets` primary buckets (power of
    /// two), skipping the `DEFAULT_BUCKETS` floor production tables get.
    pub fn model_small(buckets: usize) -> Self {
        assert!(buckets.is_power_of_two());
        Self {
            table: AtomicPtr::new(Box::into_raw(Table::with_buckets(buckets))),
            resize_lock: MutexLock::new(),
            retired: Mutex::new(Vec::new()),
            expansions: AtomicUsize::new(0),
        }
    }

    /// Runs one resize of the current table, exactly as the occupancy
    /// trigger would.
    pub fn model_force_resize(&self) {
        self.resize(self.table.load(Ordering::Acquire));
    }

    /// Re-seeds the historical lost-insert bug: a resize that migrates and
    /// publishes without ever raising the `resizing` flag, so a writer that
    /// grabs its bucket lock mid-migration inserts into the doomed table.
    /// Exists so the model suite can prove the explorer finds that bug.
    pub fn model_resize_without_flag(&self) {
        self.resize_with(self.table.load(Ordering::Acquire), false);
    }
}

impl Default for Clht {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Clht {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("Clht")
            .field("buckets", &stats.buckets)
            .field("elements", &stats.elements)
            .field("expansions", &stats.expansions)
            .finish()
    }
}

impl Drop for Clht {
    fn drop(&mut self) {
        // SAFETY: we have exclusive access; reclaim the live table and every
        // retired table.
        unsafe {
            drop(Box::from_raw(self.table.load(Ordering::Relaxed)));
            if let Ok(mut retired) = self.retired.lock() {
                for t in retired.drain(..) {
                    drop(Box::from_raw(t));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::Arc;

    #[test]
    fn get_on_empty_table() {
        let t = Clht::new();
        assert_eq!(t.get(1), None);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn zero_key_is_rejected() {
        Clht::new().get(0);
    }

    #[test]
    fn put_if_absent_inserts_once() {
        let t = Clht::new();
        let mut calls = 0;
        assert_eq!(
            t.put_if_absent(5, || {
                calls += 1;
                500
            }),
            500
        );
        assert_eq!(
            t.put_if_absent(5, || {
                calls += 1;
                999
            }),
            500
        );
        assert_eq!(calls, 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_returns_value_and_clears() {
        let t = Clht::new();
        t.put_if_absent(8, || 80);
        assert_eq!(t.remove(8), Some(80));
        assert_eq!(t.remove(8), None);
        assert_eq!(t.get(8), None);
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn many_inserts_trigger_resize_and_keep_all_entries() {
        let t = Clht::with_capacity(64);
        let n = 20_000usize;
        for k in 1..=n {
            t.put_if_absent(k, || k * 10);
        }
        assert_eq!(t.len(), n);
        assert!(t.stats().expansions > 0, "expected at least one expansion");
        for k in 1..=n {
            assert_eq!(t.get(k), Some(k * 10), "lost key {k}");
        }
    }

    #[test]
    fn for_each_sees_every_entry() {
        let t = Clht::new();
        for k in 1..=100 {
            t.put_if_absent(k, || k + 1000);
        }
        let mut seen = HashMap::new();
        t.for_each(|k, v| {
            seen.insert(k, v);
        });
        assert_eq!(seen.len(), 100);
        for k in 1..=100 {
            assert_eq!(seen[&k], k + 1000);
        }
    }

    #[test]
    fn stats_report_reasonable_occupancy() {
        let t = Clht::with_capacity(256);
        for k in 1..=100 {
            t.put_if_absent(k, || k);
        }
        let s = t.stats();
        assert_eq!(s.elements, 100);
        assert!(s.occupancy > 0.0 && s.occupancy <= 1.0);
    }

    #[test]
    fn concurrent_put_if_absent_agrees_on_one_value() {
        // All threads race to insert the same keys; every thread must observe
        // the same winning value per key.
        let t = Arc::new(Clht::new());
        let handles: Vec<_> = (0..8)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    let mut mine = Vec::new();
                    for k in 1..=1_000usize {
                        let v = t.put_if_absent(k, || tid * 1_000_000 + k);
                        mine.push((k, v));
                    }
                    mine
                })
            })
            .collect();
        let all: Vec<Vec<(usize, usize)>> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        for k in 1..=1_000usize {
            let winner = t.get(k).unwrap();
            for per_thread in &all {
                assert_eq!(per_thread[k - 1].1, winner, "divergent value for key {k}");
            }
        }
        assert_eq!(t.len(), 1_000);
    }

    #[test]
    fn concurrent_inserts_of_disjoint_keys() {
        let t = Arc::new(Clht::with_capacity(64));
        let handles: Vec<_> = (0..8usize)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for i in 0..2_000usize {
                        let k = tid * 10_000 + i + 1;
                        t.put_if_absent(k, || k * 2);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 16_000);
        for tid in 0..8usize {
            for i in 0..2_000usize {
                let k = tid * 10_000 + i + 1;
                assert_eq!(t.get(k), Some(k * 2));
            }
        }
    }

    #[test]
    fn concurrent_readers_during_resize_never_miss_existing_keys() {
        let t = Arc::new(Clht::with_capacity(64));
        for k in 1..=500usize {
            t.put_if_absent(k, || k);
        }
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&t);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        for k in 1..=500usize {
                            assert_eq!(t.get(k), Some(k), "pre-existing key {k} went missing");
                        }
                    }
                })
            })
            .collect();
        // Writers push the table through several resizes.
        for k in 501..=20_000usize {
            t.put_if_absent(k, || k);
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().unwrap();
        }
        assert!(t.stats().expansions >= 1);
    }

    #[test]
    fn mixed_insert_remove_workload() {
        let t = Arc::new(Clht::new());
        let handles: Vec<_> = (0..6usize)
            .map(|tid| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for round in 0..200usize {
                        for i in 0..50usize {
                            let k = tid * 1_000 + i + 1;
                            t.put_if_absent(k, || k);
                            if round % 2 == 0 {
                                t.remove(k);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Table must still be internally consistent: every present key maps to
        // itself.
        t.for_each(|k, v| assert_eq!(k, v));
    }
}
