//! Cache-line-sized hash-table buckets.

use std::ptr;

use gls_sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

use gls_locks::{RawLock, TtasLock};

/// Number of key/value slots per bucket. With 8-byte keys and values, three
/// pairs plus the bucket lock and the overflow pointer fill one cache line,
/// matching the paper's "up to three key-value pairs per cache line".
pub const ENTRIES_PER_BUCKET: usize = 3;

/// Reserved key meaning "empty slot". GLS never maps the NULL address, so
/// zero is safe to reserve (the paper likewise rejects NULL).
pub const EMPTY_KEY: usize = 0;

/// One hash-table bucket: a small spinlock for updates, three key/value
/// slots readable without the lock, and an overflow chain pointer.
#[repr(align(64))]
#[derive(Debug)]
pub struct Bucket {
    /// Serializes updates to this bucket (readers never take it).
    pub lock: TtasLock,
    keys: [AtomicUsize; ENTRIES_PER_BUCKET],
    values: [AtomicUsize; ENTRIES_PER_BUCKET],
    /// Overflow bucket chain (rarely used before a resize is triggered).
    pub next: AtomicPtr<Bucket>,
}

impl Default for Bucket {
    fn default() -> Self {
        Self::new()
    }
}

impl Bucket {
    /// Creates an empty bucket.
    pub fn new() -> Self {
        Self {
            lock: TtasLock::new(),
            keys: Default::default(),
            values: Default::default(),
            next: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Wait-free lookup of `key` within this bucket only (no chain walk).
    pub fn find(&self, key: usize) -> Option<usize> {
        for i in 0..ENTRIES_PER_BUCKET {
            // Publication order is value-then-key with release on the key, so
            // observing the key (acquire) guarantees the value is visible.
            if self.keys[i].load(Ordering::Acquire) == key {
                let value = self.values[i].load(Ordering::Acquire);
                // Re-check the key: a concurrent remove+reinsert of a
                // different key into the same slot would otherwise let us
                // return another key's value.
                if self.keys[i].load(Ordering::Acquire) == key {
                    return Some(value);
                }
            }
        }
        None
    }

    /// Inserts `key → value` into a free slot. Must be called with the bucket
    /// lock held. Returns `false` if the bucket is full.
    pub fn insert(&self, key: usize, value: usize) -> bool {
        for i in 0..ENTRIES_PER_BUCKET {
            if self.keys[i].load(Ordering::Relaxed) == EMPTY_KEY {
                self.values[i].store(value, Ordering::Release);
                self.keys[i].store(key, Ordering::Release);
                return true;
            }
        }
        false
    }

    /// Removes `key` from this bucket. Must be called with the bucket lock
    /// held. Returns the removed value, if the key was present.
    pub fn remove(&self, key: usize) -> Option<usize> {
        for i in 0..ENTRIES_PER_BUCKET {
            if self.keys[i].load(Ordering::Relaxed) == key {
                let value = self.values[i].load(Ordering::Relaxed);
                self.keys[i].store(EMPTY_KEY, Ordering::Release);
                return Some(value);
            }
        }
        None
    }

    /// Number of occupied slots (racy; statistics only).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn occupancy(&self) -> usize {
        (0..ENTRIES_PER_BUCKET)
            .filter(|&i| self.keys[i].load(Ordering::Relaxed) != EMPTY_KEY)
            .count()
    }

    /// Calls `f` for every occupied slot in this bucket (racy snapshot).
    pub fn for_each(&self, f: &mut impl FnMut(usize, usize)) {
        for i in 0..ENTRIES_PER_BUCKET {
            let key = self.keys[i].load(Ordering::Acquire);
            if key != EMPTY_KEY {
                let value = self.values[i].load(Ordering::Acquire);
                if self.keys[i].load(Ordering::Acquire) == key {
                    f(key, value);
                }
            }
        }
    }

    /// Locks this bucket's update lock.
    pub fn lock(&self) {
        self.lock.lock();
    }

    /// Unlocks this bucket's update lock.
    pub fn unlock(&self) {
        self.lock.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_is_cache_line_sized() {
        assert_eq!(std::mem::align_of::<Bucket>(), 64);
    }

    #[test]
    fn insert_find_remove_roundtrip() {
        let b = Bucket::new();
        assert_eq!(b.find(7), None);
        assert!(b.insert(7, 70));
        assert_eq!(b.find(7), Some(70));
        assert_eq!(b.occupancy(), 1);
        assert_eq!(b.remove(7), Some(70));
        assert_eq!(b.find(7), None);
        assert_eq!(b.occupancy(), 0);
    }

    #[test]
    fn bucket_fills_up_after_three_entries() {
        let b = Bucket::new();
        assert!(b.insert(1, 10));
        assert!(b.insert(2, 20));
        assert!(b.insert(3, 30));
        assert!(!b.insert(4, 40));
        assert_eq!(b.occupancy(), ENTRIES_PER_BUCKET);
    }

    #[test]
    fn removal_frees_a_slot_for_reuse() {
        let b = Bucket::new();
        for k in 1..=3 {
            assert!(b.insert(k, k * 10));
        }
        assert_eq!(b.remove(2), Some(20));
        assert!(b.insert(9, 90));
        assert_eq!(b.find(9), Some(90));
        assert_eq!(b.find(1), Some(10));
        assert_eq!(b.find(3), Some(30));
    }

    #[test]
    fn for_each_visits_all_entries() {
        let b = Bucket::new();
        b.insert(1, 10);
        b.insert(2, 20);
        let mut seen = Vec::new();
        b.for_each(&mut |k, v| seen.push((k, v)));
        seen.sort();
        assert_eq!(seen, vec![(1, 10), (2, 20)]);
    }
}
