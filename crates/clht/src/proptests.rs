//! Model-based property tests: the CLHT must behave exactly like a
//! sequential `HashMap` under any sequence of operations, and must preserve
//! all entries across resizes.

use std::collections::HashMap;

use proptest::prelude::*;

use crate::Clht;

/// One operation of the sequential model.
#[derive(Debug, Clone)]
enum Op {
    Get(usize),
    PutIfAbsent(usize, usize),
    Remove(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Keys are drawn from a small range to force collisions, chained buckets
    // and key reuse after removal.
    let key = 1usize..64;
    let value = 1usize..10_000;
    prop_oneof![
        key.clone().prop_map(Op::Get),
        (key.clone(), value).prop_map(|(k, v)| Op::PutIfAbsent(k, v)),
        key.prop_map(Op::Remove),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Sequential equivalence with HashMap::entry(or_insert)/remove/get.
    #[test]
    fn matches_hashmap_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let table = Clht::with_capacity(8);
        let mut model: HashMap<usize, usize> = HashMap::new();
        for op in ops {
            match op {
                Op::Get(k) => {
                    prop_assert_eq!(table.get(k), model.get(&k).copied());
                }
                Op::PutIfAbsent(k, v) => {
                    let expected = *model.entry(k).or_insert(v);
                    let got = table.put_if_absent(k, || v);
                    prop_assert_eq!(got, expected);
                }
                Op::Remove(k) => {
                    prop_assert_eq!(table.remove(k), model.remove(&k));
                }
            }
            prop_assert_eq!(table.len(), model.len());
        }
        // Final sweep: every model entry must be present, and for_each must
        // visit exactly the model's contents.
        for (&k, &v) in &model {
            prop_assert_eq!(table.get(k), Some(v));
        }
        let mut seen = HashMap::new();
        table.for_each(|k, v| { seen.insert(k, v); });
        prop_assert_eq!(seen, model);
    }

    /// Inserting any set of distinct keys, with any capacity, keeps every
    /// entry readable (resize preserves contents).
    #[test]
    fn resize_preserves_entries(
        keys in proptest::collection::hash_set(1usize..100_000, 1..600),
        capacity in 1usize..256,
    ) {
        let table = Clht::with_capacity(capacity);
        for &k in &keys {
            prop_assert_eq!(table.put_if_absent(k, || k + 7), k + 7);
        }
        prop_assert_eq!(table.len(), keys.len());
        for &k in &keys {
            prop_assert_eq!(table.get(k), Some(k + 7));
        }
    }

    /// put_if_absent never calls `make` when the key exists.
    #[test]
    fn make_is_lazy(keys in proptest::collection::vec(1usize..32, 1..200)) {
        let table = Clht::new();
        let mut first_values: HashMap<usize, usize> = HashMap::new();
        for (i, &k) in keys.iter().enumerate() {
            let mut called = false;
            let v = table.put_if_absent(k, || { called = true; i + 1 });
            match first_values.get(&k) {
                Some(&expected) => {
                    prop_assert!(!called, "make() ran for an existing key");
                    prop_assert_eq!(v, expected);
                }
                None => {
                    prop_assert!(called);
                    first_values.insert(k, v);
                }
            }
        }
    }
}
