#!/usr/bin/env python3
"""Require a written safety argument at every `unsafe` site.

`unsafe_op_in_unsafe_fn` is denied workspace-wide (see the root
Cargo.toml `[workspace.lints.rust]`), so every unsafe *operation* is
wrapped in an explicit `unsafe { .. }` block — which makes the block the
natural place to demand the proof obligation be discharged in writing:

- every `unsafe {` block and `unsafe impl` must be preceded by a
  `// SAFETY:` comment (within the few lines above, blank lines and
  attributes allowed in between);
- every `unsafe fn` must document its contract in a `/// # Safety`
  doc section (what the *caller* must uphold), since the obligation
  lives at the call sites, not inside the body.

An unsafe block whose justification is "obviously fine" still gets a
comment — if it is obvious, the comment is one line.

Usage: check_safety_comments.py [ROOT]
"""

import pathlib
import re
import sys

SKIP_DIRS = {"target", "vendor", ".git"}

UNSAFE_BLOCK = re.compile(r"(^|[^'\w])unsafe\s*\{")
UNSAFE_IMPL = re.compile(r"(^|[^'\w])unsafe\s+impl\b")
UNSAFE_FN = re.compile(r"(^|[^'\w])unsafe\s+(extern\s+\"[^\"]*\"\s+)?fn\b")
# Accept qualified forms like `// SAFETY (here and below):` too.
SAFETY_COMMENT = re.compile(r"//\s*SAFETY\b", re.IGNORECASE)
SAFETY_DOC = re.compile(r"///?\s*#\s*Safety", re.IGNORECASE)
# How far above the site we look for the comment. A plain window (no
# stop-at-code rule) deliberately tolerates the two idioms a stricter
# scan rejects: one SAFETY comment shared by consecutive `unsafe impl`s,
# and a comment above the compound expression that contains the block.
LOOKBACK = 6

COMMENT = re.compile(r"//.*$")


def code_part(line):
    """The non-comment part of a line (no block-comment handling; the
    workspace does not use `/* */`)."""
    return COMMENT.sub("", line)


def has_safety_above(lines, idx, pattern):
    lo = max(0, idx - LOOKBACK)
    return any(pattern.search(lines[j]) for j in range(lo, idx))


DOC_OR_ATTR = re.compile(r"^\s*(///|//|#\[)")


def has_safety_doc(lines, idx):
    """Walk the doc-comment/attribute block attached to the item at `idx`
    (however long) looking for a `# Safety` section."""
    j = idx - 1
    while j >= 0 and DOC_OR_ATTR.match(lines[j]):
        if SAFETY_DOC.search(lines[j]):
            return True
        j -= 1
    return False


def main():
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    violations = []
    for path in sorted(root.rglob("*.rs")):
        rel = path.relative_to(root)
        if SKIP_DIRS & set(rel.parts):
            continue
        lines = path.read_text().splitlines()
        for i, line in enumerate(lines):
            code = code_part(line)
            if UNSAFE_FN.search(code):
                if not has_safety_doc(lines, i):
                    violations.append(
                        f"{rel}:{i + 1}: unsafe fn without a `# Safety` doc section"
                    )
            elif UNSAFE_IMPL.search(code) or UNSAFE_BLOCK.search(code):
                if not SAFETY_COMMENT.search(line) and not has_safety_above(
                    lines, i, SAFETY_COMMENT
                ):
                    violations.append(
                        f"{rel}:{i + 1}: unsafe site without a `// SAFETY:` comment"
                    )
    if violations:
        print("unsafe without a written safety argument:")
        for v in violations:
            print(f"  {v}")
        print(
            f"\n{len(violations)} violation(s). State why the operation is "
            "sound in a `// SAFETY:` comment directly above it (or a "
            "`# Safety` doc section for an unsafe fn)."
        )
        return 1
    print("check_safety_comments: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
