#!/usr/bin/env python3
"""Enforce the workspace's `Ordering::SeqCst` allowlist.

SeqCst is almost never what a lock protocol wants: it hides missing
acquire/release pairs behind a global total order the hardware pays for
on every access, and it makes the *intended* synchronisation edge
impossible to read off the code. Every atomic in the lock crates is
expected to name the edge it implements (Acquire/Release/AcqRel) or to
be explicitly order-free (Relaxed).

The deadlock detector is the deliberate exception: its waits-for
bookkeeping relies on a total order over edge stores from *different*
threads (two threads closing a cycle must each see the other's edge —
see the module docs of `crates/core/src/gls/debug.rs`), which is
precisely the guarantee only SeqCst gives. Those modules are allowlisted
below, each with the reason recorded here.

Any other `SeqCst` in workspace Rust sources fails CI. To add one,
either fix the ordering (usual case) or add the file to ALLOWLIST with a
written reason. The allowlist itself is checked for drift: an entry
whose file is missing, or whose file no longer contains any SeqCst,
fails the run so exemptions cannot outlive the code they excuse.

Usage: check_ordering.py [ROOT]
"""

import pathlib
import re
import sys

# file (relative to repo root) -> why SeqCst is the correct order there
ALLOWLIST = {
    "crates/core/src/gls/debug.rs": (
        "waits-for edges: threads racing to close a cycle must agree on a "
        "single total order of edge stores, or both can miss the cycle"
    ),
    "crates/core/src/gls/entry.rs": (
        "owner word: the detector's owner walk pairs with debug.rs edge "
        "stores and needs the same total order (see entry.rs owner docs)"
    ),
    "crates/clht/src/table.rs": (
        "resizing flag: publication must be totally ordered against bucket "
        "in-progress bits across helper threads during a resize"
    ),
    "crates/model/src/sched.rs": (
        "ordering classifier: the happens-before recorder pattern-matches "
        "every C11 ordering — including SeqCst — to decide which accesses "
        "publish or join clocks; it implements orderings, it does not pick one"
    ),
}

# Directories that are not workspace sources.
SKIP_DIRS = {"target", "vendor", ".git"}

SEQCST = re.compile(r"\bSeqCst\b")
LINE_COMMENT = re.compile(r"(^|[^:])//.*$")


def strip_comments(line):
    """Drop `//`/`///`/`//!` comment text (good enough: the workspace has
    no SeqCst inside string literals or block comments)."""
    return LINE_COMMENT.sub(r"\1", line)


def check_allowlist_drift(root):
    """An allowlist entry that no longer earns its keep is itself a
    violation: the file is gone (stale entry hides future SeqCst under a
    recycled path) or it no longer contains any SeqCst (the exemption
    outlived the code it excused)."""
    drift = []
    for rel, reason in sorted(ALLOWLIST.items()):
        path = root / rel
        if not path.is_file():
            drift.append(f"{rel}: allowlisted but the file does not exist")
            continue
        lines = path.read_text().splitlines()
        if not any(SEQCST.search(strip_comments(line)) for line in lines):
            drift.append(
                f"{rel}: allowlisted ({reason.split(':')[0]}) but contains "
                "no SeqCst — drop the entry"
            )
    return drift


def main():
    root = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else ".").resolve()
    violations = []
    for path in sorted(root.rglob("*.rs")):
        rel = path.relative_to(root)
        if SKIP_DIRS & set(rel.parts):
            continue
        if str(rel) in ALLOWLIST:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if SEQCST.search(strip_comments(line)):
                violations.append(f"{rel}:{lineno}: {line.strip()}")
    drift = check_allowlist_drift(root)
    if drift:
        print("Allowlist drift (see scripts/check_ordering.py):")
        for d in drift:
            print(f"  {d}")
        if not violations:
            print(f"\n{len(drift)} stale allowlist entr(y/ies).")
            return 1
    if violations:
        print("SeqCst outside the allowlist (see scripts/check_ordering.py):")
        for v in violations:
            print(f"  {v}")
        print(
            f"\n{len(violations)} violation(s). Name the synchronisation edge "
            "(Acquire/Release/AcqRel/Relaxed) or allowlist the file with a "
            "written reason."
        )
        return 1
    print(f"check_ordering: OK ({len(ALLOWLIST)} allowlisted files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
