#!/usr/bin/env python3
"""Validate the schema of the BENCH_*.json benchmark artifacts.

Every artifact — and every *point* inside it — must record the host
topology (`hardware_contexts`, `cache_domains`) and the worker placement
(`pin_policy`, `pinned`). A trajectory point without these fields is
uninterpretable: a single-context CI smoke run and a 48-context dedicated
box would be indistinguishable, which is exactly the measurement bug this
schema exists to prevent. CI fails if the fields are absent.

Usage: validate_bench_schema.py FILE.json [FILE.json ...]
"""

import json
import sys

TOPOLOGY_FIELDS = ("hardware_contexts", "cache_domains", "pin_policy", "pinned")
POINT_ARRAYS = ("points", "private_locks_ns_per_op", "shared_lock_mops")
PIN_POLICIES = ("round_robin", "unpinned")


def fail(message):
    print(f"schema error: {message}", file=sys.stderr)
    sys.exit(1)


def check_topology(owner, obj, path):
    for key in TOPOLOGY_FIELDS:
        if key not in obj:
            fail(f"{path}: {owner} is missing {key!r}")
    if not isinstance(obj["hardware_contexts"], int) or obj["hardware_contexts"] < 1:
        fail(f"{path}: {owner} has a bogus hardware_contexts value")
    if not isinstance(obj["cache_domains"], int) or obj["cache_domains"] < 1:
        fail(f"{path}: {owner} has a bogus cache_domains value")
    if obj["pin_policy"] not in PIN_POLICIES:
        fail(f"{path}: {owner} has unknown pin_policy {obj['pin_policy']!r}")
    if not isinstance(obj["pinned"], bool):
        fail(f"{path}: {owner} has a non-boolean pinned flag")


def validate(path):
    with open(path) as f:
        doc = json.load(f)
    check_topology("the top level", doc, path)
    arrays = [key for key in POINT_ARRAYS if key in doc]
    if not arrays:
        fail(f"{path}: no recognized point arrays (expected one of {POINT_ARRAYS})")
    total = 0
    for key in arrays:
        points = doc[key]
        if not isinstance(points, list) or not points:
            fail(f"{path}: {key!r} must be a non-empty array")
        for index, point in enumerate(points):
            check_topology(f"{key}[{index}]", point, path)
        total += len(points)
    print(f"{path}: OK ({total} points across {len(arrays)} array(s))")


def main(argv):
    if not argv:
        fail("no artifact paths given")
    for path in argv:
        validate(path)


if __name__ == "__main__":
    main(sys.argv[1:])
