#!/usr/bin/env python3
"""Enforce the tsan.supp justification policy.

The nightly TSan lane runs with `suppressions=tsan.supp`. A suppression
is a loaded gun: one careless `race:` pattern can silence a real data
race in exactly the code the lane exists to watch. The policy (stated in
tsan.supp itself) is that every entry carries a written justification —
why the report is a false positive (or a deliberate, documented race)
and a pointer to the code that makes it sound.

This script makes the policy mechanical:

* every suppression line (`race:...`, `deadlock:...`, etc.) must be
  directly preceded by at least one comment line that is not the file's
  header block — i.e. a justification written for *that* entry;
* the justification must be substantive: at least MIN_WORDS words, so
  `# TODO` or `# false positive` alone do not pass review by machine.

Usage: check_tsan_supp.py [SUPP_FILE]
"""

import pathlib
import re
import sys

# ThreadSanitizer suppression kinds
# (https://clang.llvm.org/docs/ThreadSanitizer.html).
SUPPRESSION = re.compile(
    r"^(race|race_top|thread|mutex|signal|deadlock|called_from_lib):"
)

# A one- or two-word comment is a label, not a justification.
MIN_WORDS = 6


def check(path):
    problems = []
    justification_words = 0
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.strip()
        if not line:
            # A blank line ends the preceding comment block: a
            # justification must sit directly above its entry.
            justification_words = 0
            continue
        if line.startswith("#"):
            justification_words += len(line.lstrip("#").split())
            continue
        if SUPPRESSION.match(line):
            if justification_words == 0:
                problems.append(
                    f"{path.name}:{lineno}: suppression '{line}' has no "
                    "justification comment directly above it"
                )
            elif justification_words < MIN_WORDS:
                problems.append(
                    f"{path.name}:{lineno}: justification for '{line}' is "
                    f"too thin ({justification_words} word(s), need "
                    f">= {MIN_WORDS}): explain why the report is a false "
                    "positive and point at the code that makes it sound"
                )
            # Consecutive suppressions need their own justifications.
            justification_words = 0
        else:
            problems.append(
                f"{path.name}:{lineno}: unrecognized line '{line}' — "
                "expected a comment or a <kind>:<pattern> suppression"
            )
    return problems


def main():
    path = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "tsan.supp")
    if not path.is_file():
        print(f"check_tsan_supp: {path} not found")
        return 1
    problems = check(path)
    if problems:
        print("tsan.supp policy violations (see scripts/check_tsan_supp.py):")
        for p in problems:
            print(f"  {p}")
        return 1
    print(f"check_tsan_supp: OK ({path})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
