#!/usr/bin/env python3
"""Validate the schema of a GLS telemetry snapshot JSON export.

`GlsService::telemetry_snapshot().to_json()` is hand-rolled (the workspace
builds offline, without serde), so CI parses a real emitted snapshot here
and checks every field the exporter promises: the versioned envelope, the
per-lock profiles with their latency histogram summaries, and the
service-wide cache / parking-lot / cohort / migration / deadlock counters.
A field silently dropped or renamed by a refactor fails CI instead of
failing whoever scrapes the snapshots.

Usage: validate_snapshot_schema.py FILE.json [FILE.json ...]
"""

import json
import sys

TOP_LEVEL = {
    "version": int,
    "mode": str,
    "lock_count": int,
    "retired_count": int,
    "locks": list,
    "cache": dict,
    "parking_lot": dict,
    "cohort": dict,
    "auto_migrations": dict,
    "glk_transitions": int,
    "deadlock": dict,
}
MODES = ("normal", "debug", "profile")
HISTOGRAM_FIELDS = ("count", "mean", "min", "max", "p50", "p99", "p999")
LOCK_FIELDS = {
    "addr": int,
    "algorithm": str,
    "acquisitions": int,
    "avg_queue": (int, float),
    "avg_lock_latency": (int, float),
    "avg_cs_latency": (int, float),
    "lock_latency": dict,
    "cs_latency": dict,
    "transitions": int,
}
CACHE_FIELDS = {"hits": int, "misses": int, "invalidations": int, "hit_rate": (int, float)}
PARKING_FIELDS = {"buckets": int, "parked": int, "growth_events": int, "requeued_waiters": int}
COHORT_FIELDS = {"handoffs": int, "head_bypasses": int}
MIGRATION_FIELDS = {"to_parking": int, "to_per_lock": int}
DEADLOCK_FIELDS = {"candidates": int, "confirmed": int}


def fail(message):
    print(f"snapshot schema error: {message}", file=sys.stderr)
    sys.exit(1)


def check_fields(obj, spec, where, path):
    for key, types in spec.items():
        if key not in obj:
            fail(f"{path}: {where} is missing {key!r}")
        if not isinstance(obj[key], types):
            fail(f"{path}: {where}.{key} has type {type(obj[key]).__name__}")
        if isinstance(obj[key], (int, float)) and not isinstance(obj[key], bool):
            if obj[key] < 0:
                fail(f"{path}: {where}.{key} is negative")


def check_histogram(hist, where, path):
    check_fields(hist, {k: (int, float) for k in HISTOGRAM_FIELDS}, where, path)
    if hist["count"] > 0 and hist["max"] < hist["min"]:
        fail(f"{path}: {where} has max < min")
    if not hist["p50"] <= hist["p99"] <= hist["p999"]:
        fail(f"{path}: {where} quantiles are not monotone")


def validate(path):
    with open(path) as f:
        doc = json.load(f)
    check_fields(doc, TOP_LEVEL, "the top level", path)
    if doc["version"] != 1:
        fail(f"{path}: unknown snapshot version {doc['version']}")
    if doc["mode"] not in MODES:
        fail(f"{path}: unknown mode {doc['mode']!r}")
    budget = doc.get("sampling_budget", "MISSING")
    if budget == "MISSING":
        fail(f"{path}: the top level is missing 'sampling_budget'")
    if budget is not None and (not isinstance(budget, int) or budget < 1):
        fail(f"{path}: sampling_budget must be null or a positive integer")
    if doc["lock_count"] != len(doc["locks"]):
        fail(f"{path}: lock_count {doc['lock_count']} != {len(doc['locks'])} locks")
    for index, lock in enumerate(doc["locks"]):
        where = f"locks[{index}]"
        check_fields(lock, LOCK_FIELDS, where, path)
        check_histogram(lock["lock_latency"], f"{where}.lock_latency", path)
        check_histogram(lock["cs_latency"], f"{where}.cs_latency", path)
    check_fields(doc["cache"], CACHE_FIELDS, "cache", path)
    if not 0 <= doc["cache"]["hit_rate"] <= 1:
        fail(f"{path}: cache.hit_rate outside [0, 1]")
    check_fields(doc["parking_lot"], PARKING_FIELDS, "parking_lot", path)
    check_fields(doc["cohort"], COHORT_FIELDS, "cohort", path)
    check_fields(doc["auto_migrations"], MIGRATION_FIELDS, "auto_migrations", path)
    check_fields(doc["deadlock"], DEADLOCK_FIELDS, "deadlock", path)
    print(f"{path}: OK ({doc['lock_count']} locks, mode={doc['mode']})")


def main(argv):
    if not argv:
        fail("no snapshot paths given")
    for path in argv:
        validate(path)


if __name__ == "__main__":
    main(sys.argv[1:])
