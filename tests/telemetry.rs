//! Always-on observability: sampling fidelity, flight-recorder wraparound,
//! and the telemetry snapshot's JSON export.

// Integration tests drive real threads on wall-clock time; raw std sync
// and sleeps are the point here (see clippy.toml).
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use gls::{GlsConfig, GlsMode, GlsService};
use gls_runtime::flight::{self, FlightEventKind, RING_CAPACITY};

/// Cycles spun inside the measured critical section. Large enough that the
/// CS dominates the (debug-build, unoptimized) lock/unlock bookkeeping whose
/// run-to-run drift would otherwise swamp a 10% fidelity comparison.
const CS_CYCLES: u64 = 2_000;

/// Profiles `iterations` lock/unlock pairs of one address on one thread and
/// returns `(acquisitions, avg_cs_latency)` for that lock.
fn profile_one_lock(service: &GlsService, iterations: u64) -> (u64, f64) {
    const ADDR: usize = 0xF1DE_1000;
    for _ in 0..iterations {
        service.lock_addr(ADDR).unwrap();
        gls_runtime::spin_cycles(CS_CYCLES);
        service.unlock_addr(ADDR).unwrap();
    }
    let report = service.profile_report();
    let profile = report
        .locks
        .iter()
        .find(|l| l.addr == ADDR)
        .expect("the profiled lock must appear in the report");
    (profile.acquisitions, profile.avg_cs_latency)
}

#[test]
fn sampled_averages_track_full_measurement() {
    // Enough iterations for the sampler to pass dozens of adaptation
    // windows (4096 acquisitions each) and settle on a stride.
    const ITERATIONS: u64 = 150_000;

    // Throwaway warmup so both measured runs see a warm code path and a
    // steady clock, not a cold-start first run vs a warm second.
    let warmup = GlsService::with_config(GlsConfig::default().with_mode(GlsMode::Profile));
    let _ = profile_one_lock(&warmup, 20_000);

    let full = GlsService::with_config(GlsConfig::default().with_mode(GlsMode::Profile));
    let (full_count, full_avg) = profile_one_lock(&full, ITERATIONS);

    let sampled = GlsService::with_config(
        GlsConfig::default()
            .with_mode(GlsMode::Profile)
            .with_sampling(20_000),
    );
    let (sampled_count, sampled_avg) = profile_one_lock(&sampled, ITERATIONS);

    // Acquisition counts are exact in both modes: sampling thins the
    // measurement, never the counting.
    assert_eq!(full_count, ITERATIONS);
    assert_eq!(sampled_count, ITERATIONS);

    // The sampled average critical-section latency must track the full
    // measurement within 10%, plus a small absolute floor so cycle-counter
    // jitter cannot fail the test spuriously.
    assert!(full_avg > 0.0, "full measurement must observe the CS");
    assert!(sampled_avg > 0.0, "sampling must still observe the CS");
    let tolerance = full_avg * 0.10 + 100.0;
    assert!(
        (sampled_avg - full_avg).abs() <= tolerance,
        "sampled avg cs latency {sampled_avg:.1} deviates from full measurement \
         {full_avg:.1} by more than {tolerance:.1} cycles"
    );
}

#[test]
fn sampling_measures_fewer_acquisitions_than_full_mode() {
    // With a deliberately tiny budget the stride must rise above 1, so the
    // latency histogram records far fewer samples than acquisitions while
    // the acquisition count stays exact.
    const ITERATIONS: u64 = 100_000;
    let service = GlsService::with_config(
        GlsConfig::default()
            .with_mode(GlsMode::Profile)
            .with_sampling(1_000),
    );
    let (count, _) = profile_one_lock(&service, ITERATIONS);
    assert_eq!(count, ITERATIONS);

    let snapshot = service.telemetry_snapshot();
    let lock = snapshot
        .locks
        .iter()
        .find(|l| l.acquisitions == ITERATIONS)
        .expect("the hammered lock must appear in the snapshot");
    assert!(
        lock.cs_latency.count < ITERATIONS / 2,
        "a 1k/s budget must thin measurement well below half ({} of {})",
        lock.cs_latency.count,
        ITERATIONS
    );
    assert!(
        lock.cs_latency.count > 0,
        "sampling must never silence the profiler entirely"
    );
}

#[test]
fn flight_ring_wraps_at_capacity() {
    let _ = flight::drain();
    for i in 0..(RING_CAPACITY as u64 + 25) {
        flight::record(FlightEventKind::Park, 0xABC, i);
    }
    let events = flight::drain();
    assert_eq!(events.len(), RING_CAPACITY);
    // Oldest retained is the first event of this batch not yet overwritten.
    assert_eq!(events[0].info, 25);
    assert_eq!(events[RING_CAPACITY - 1].info, RING_CAPACITY as u64 + 24);
    assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
}

/// Pulls `"key":<digits>` out of a flat JSON string (no spaces in our
/// exporter's output).
fn json_u64(json: &str, key: &str) -> u64 {
    let needle = format!("\"{key}\":");
    let at = json
        .find(&needle)
        .unwrap_or_else(|| panic!("{key} missing"));
    json[at + needle.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{key} is not a number"))
}

#[test]
fn snapshot_json_round_trips_counts() {
    let service = GlsService::with_config(GlsConfig::default().with_mode(GlsMode::Profile));
    for addr in [0x1000usize, 0x2000, 0x3000] {
        for _ in 0..10 {
            service.lock_addr(addr).unwrap();
            service.unlock_addr(addr).unwrap();
        }
    }
    let snapshot = service.telemetry_snapshot();
    let json = snapshot.to_json();

    // Structural sanity: braces and brackets balance outside strings.
    let (mut depth, mut in_string, mut escaped) = (0i64, false, false);
    for c in json.chars() {
        if in_string {
            match (escaped, c) {
                (true, _) => escaped = false,
                (false, '\\') => escaped = true,
                (false, '"') => in_string = false,
                _ => {}
            }
        } else {
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced JSON");
        }
    }
    assert_eq!(depth, 0, "unbalanced JSON");
    assert!(!in_string, "unterminated string");

    // The counters written into the JSON match the snapshot struct.
    assert_eq!(json_u64(&json, "version"), 1);
    assert_eq!(json_u64(&json, "lock_count"), snapshot.lock_count as u64);
    assert_eq!(json_u64(&json, "lock_count"), 3);
    assert_eq!(json_u64(&json, "glk_transitions"), snapshot.glk_transitions);
    assert!(json.contains("\"mode\":\"profile\""));
    assert!(json.contains("\"sampling_budget\":null"));
    assert_eq!(
        json.matches("\"acquisitions\":").count(),
        3,
        "every lock appears once"
    );
    // Every per-lock acquisition count is exactly the 10 we performed.
    assert_eq!(json.matches("\"acquisitions\":10,").count(), 3);
}

#[test]
fn publisher_delivers_snapshots_until_stopped() {
    let service = Arc::new(GlsService::new());
    service.lock_addr(0x77).unwrap();
    service.unlock_addr(0x77).unwrap();

    let seen = Arc::new(AtomicBool::new(false));
    let seen2 = Arc::clone(&seen);
    let publisher = service.spawn_telemetry_publisher(Duration::from_millis(10), move |snap| {
        assert!(snap.lock_count >= 1);
        seen2.store(true, Ordering::Release);
    });
    // The publisher emits at least one snapshot within a generous window.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !seen.load(Ordering::Acquire) {
        assert!(
            std::time::Instant::now() < deadline,
            "publisher never delivered a snapshot"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    publisher.stop();
}
