//! Cache-semantics suite: the per-thread set-associative lock cache, its
//! precise (per-entry epoch) invalidation protocol, the free/recreate
//! machinery behind it, and the equivalence of profile reports after the
//! sharded-stats fold.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use gls::{
    reset_thread_cache_stats, thread_cache_stats, GlsConfig, GlsService, LockKind, CACHE_SETS,
    CACHE_WAYS,
};

/// A multi-lock working set within the cache capacity never misses after
/// warm-up. This is the workload the single-entry cache thrashed on: with
/// two or more locks per thread it missed on *every* acquisition.
#[test]
fn multi_lock_working_set_hits_in_cache() {
    let svc = GlsService::new();
    let addrs: Vec<usize> = (0..16).map(|i| 0x77_0000 + i * 64).collect();
    // Warm-up round: create the entries and populate the cache.
    for &a in &addrs {
        svc.lock_addr(a).unwrap();
        svc.unlock_addr(a).unwrap();
    }
    reset_thread_cache_stats();
    let rounds = 500;
    for _ in 0..rounds {
        for &a in &addrs {
            svc.lock_addr(a).unwrap();
            svc.unlock_addr(a).unwrap();
        }
    }
    let stats = thread_cache_stats();
    // Each lock+unlock performs two lookups. A 16-address working set fits
    // the CACHE_SETS × CACHE_WAYS geometry unless the (deterministic)
    // address hash crowds more than CACHE_WAYS of them into one set; these
    // addresses spread cleanly, so every lookup after warm-up hits.
    assert!(addrs.len() <= CACHE_SETS * CACHE_WAYS);
    assert_eq!(stats.misses, 0, "working set within capacity must not miss");
    assert_eq!(stats.hits, rounds * 2 * addrs.len() as u64);
}

/// The acceptance-criterion test: freeing one address must not invalidate
/// the cached mapping of any other address.
#[test]
fn free_one_address_keeps_other_cached() {
    let svc = GlsService::new();
    let (a, b) = (0x11_0000, 0x22_0000);
    for &addr in &[a, b] {
        svc.lock_addr(addr).unwrap();
        svc.unlock_addr(addr).unwrap();
    }
    reset_thread_cache_stats();
    assert!(svc.free_addr(b));
    for _ in 0..10 {
        svc.lock_addr(a).unwrap();
        svc.unlock_addr(a).unwrap();
    }
    let stats = thread_cache_stats();
    assert_eq!(
        stats.misses, 0,
        "freeing B evicted A's cached mapping — invalidation is not precise"
    );
    assert_eq!(stats.invalidations, 0);
    assert_eq!(stats.hits, 20);
}

/// The freed address itself must stop hitting: its cached slot fails epoch
/// validation on the next probe, on the thread that cached it.
#[test]
fn free_invalidates_its_own_cached_mapping() {
    let svc = GlsService::new();
    let (a, b) = (0x33_0000, 0x44_0000);
    for &addr in &[a, b] {
        svc.lock_addr(addr).unwrap();
        svc.unlock_addr(addr).unwrap();
    }
    assert!(svc.free_addr(b));
    reset_thread_cache_stats();
    // find_entry must not serve the stale cached mapping for b.
    assert_eq!(svc.algorithm_of(b), None, "freed address must be gone");
    let stats = thread_cache_stats();
    assert_eq!(
        stats.invalidations, 1,
        "the stale slot was self-invalidated"
    );
    // …while a is untouched.
    assert_eq!(svc.algorithm_of(a), Some(LockKind::Glk));
    assert_eq!(thread_cache_stats().hits, 1);
}

/// A free + recreate performed by *another* thread changes the entry's
/// epoch, so this thread's stale slot fails validation even though address
/// and entry pointer are identical again (the allocation is resurrected).
#[test]
fn free_and_recreate_elsewhere_invalidates_stale_mapping() {
    let svc = Arc::new(GlsService::new());
    let addr = 0x55_0000usize;
    svc.lock_addr(addr).unwrap();
    svc.unlock_addr(addr).unwrap(); // cached here
    assert!(svc.free_addr(addr));
    let svc2 = Arc::clone(&svc);
    std::thread::spawn(move || {
        svc2.lock_addr(addr).unwrap();
        svc2.unlock_addr(addr).unwrap();
    })
    .join()
    .unwrap();
    assert_eq!(svc.retired_count(), 0, "the parked entry was resurrected");
    reset_thread_cache_stats();
    svc.lock_addr(addr).unwrap();
    svc.unlock_addr(addr).unwrap();
    let stats = thread_cache_stats();
    assert_eq!(
        stats.invalidations, 1,
        "the resurrected entry's epoch must differ from the cached one"
    );
    assert_eq!(stats.hits, 1, "the re-cached mapping hits again (unlock)");
}

/// Concurrent version of precise invalidation: one thread's hot lock stays
/// cached (zero misses) while another thread churns free/recreate cycles on
/// unrelated addresses the whole time. The broadcast generation counter
/// this PR removed failed this by design: every `free` invalidated every
/// thread's whole cache.
#[test]
fn churn_on_other_addresses_never_disturbs_a_hot_mapping() {
    let svc = Arc::new(GlsService::new());
    let hot = 0x66_0000usize;
    let stop = Arc::new(AtomicBool::new(false));
    let churned = Arc::new(AtomicU64::new(0));
    let churner = {
        let svc = Arc::clone(&svc);
        let stop = Arc::clone(&stop);
        let churned = Arc::clone(&churned);
        std::thread::spawn(move || {
            let mut rounds = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let addr = 0x88_0000 + (rounds as usize % 8) * 64;
                svc.lock_addr(addr).unwrap();
                svc.unlock_addr(addr).unwrap();
                assert!(svc.free_addr(addr));
                rounds += 1;
                churned.store(rounds, Ordering::Relaxed);
            }
        })
    };
    svc.lock_addr(hot).unwrap();
    svc.unlock_addr(hot).unwrap(); // warm
    reset_thread_cache_stats();
    // Keep hammering the hot lock until a substantial amount of churn has
    // really interleaved (on a single-core box the churner may not be
    // scheduled at all for the first millisecond), with a generous
    // iteration cap as a safety valve against a starved churner.
    let mut iters = 0u64;
    loop {
        svc.lock_addr(hot).unwrap();
        svc.unlock_addr(hot).unwrap();
        iters += 1;
        if (iters >= 50_000 && churned.load(Ordering::Relaxed) >= 100) || iters >= 50_000_000 {
            break;
        }
    }
    let stats = thread_cache_stats();
    stop.store(true, Ordering::Relaxed);
    churner.join().unwrap();
    let churn_rounds = churned.load(Ordering::Relaxed);
    assert!(churn_rounds >= 100, "the churner must have freed something");
    assert_eq!(
        stats.misses, 0,
        "{churn_rounds} free/recreate cycles on other addresses must not \
         evict the hot mapping (pre-PR: every free invalidated it)"
    );
    assert_eq!(stats.hits, 2 * iters);
    assert!(
        svc.retired_count() <= 8,
        "churn stays bounded by its working set"
    );
}

/// A `free` racing with a lock holder must not strand the holder: its
/// release lands on the retired (parked) entry instead of erroring, and the
/// address remains usable afterwards.
#[test]
fn racing_free_cannot_strand_a_holder() {
    let svc = Arc::new(GlsService::new());
    let addr = 0x99_0000usize;
    svc.lock_addr(addr).unwrap();
    // Another thread frees the address while we hold its lock.
    let svc2 = Arc::clone(&svc);
    std::thread::spawn(move || assert!(svc2.free_addr(addr)))
        .join()
        .unwrap();
    // Pre-PR this returned UninitializedLock and left the entry locked
    // forever; now the release reaches the parked entry.
    svc.unlock_addr(addr).unwrap();
    // The resurrected entry is actually unlocked: a fresh create can take it.
    svc.lock_addr(addr).unwrap();
    svc.unlock_addr(addr).unwrap();
    assert_eq!(svc.retired_count(), 0);
}

/// Disabling the lock cache sends every operation through the table and
/// records no cache activity.
#[test]
fn disabled_lock_cache_is_fully_bypassed() {
    let svc = GlsService::with_config(GlsConfig::default().with_lock_cache(false));
    reset_thread_cache_stats();
    for i in 0..32usize {
        let addr = 0xAA_0000 + (i % 4) * 64;
        svc.lock_addr(addr).unwrap();
        svc.unlock_addr(addr).unwrap();
    }
    let stats = thread_cache_stats();
    assert_eq!(stats.hits + stats.misses, 0, "no lookups may be recorded");
}

/// Profile mode must lose no sample to the sharded fold: with T threads
/// doing exactly N acquisitions each on one lock, the folded report shows
/// exactly T × N acquisitions, and the latency averages are populated.
#[test]
fn profile_report_is_exact_after_sharded_fold() {
    let svc = Arc::new(GlsService::with_config(GlsConfig::profile()));
    let addr = 0xBB_0000usize;
    let threads = 8usize;
    let per_thread = 1_000u64;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..per_thread {
                    svc.lock_addr(addr).unwrap();
                    gls_runtime::spin_cycles(50);
                    svc.unlock_addr(addr).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let report = svc.profile_report();
    let lock = report
        .locks
        .iter()
        .find(|l| l.addr == addr)
        .expect("profiled lock must appear in the report");
    assert_eq!(
        lock.acquisitions,
        threads as u64 * per_thread,
        "the sharded fold must not lose acquisitions"
    );
    assert!(lock.avg_lock_latency > 0.0);
    assert!(
        lock.avg_cs_latency > 0.0,
        "cs sections are timed via shards"
    );
}

/// Single-threaded profile determinism: every sample lands in one shard and
/// the report matches the op counts exactly, like the unsharded profiler.
#[test]
fn profile_report_single_thread_matches_op_counts() {
    let svc = GlsService::with_config(GlsConfig::profile());
    for i in 0..120usize {
        let addr = 0xCC_0000 + (i % 3) * 64;
        svc.lock_addr(addr).unwrap();
        gls_runtime::spin_cycles(80);
        svc.unlock_addr(addr).unwrap();
    }
    let report = svc.profile_report();
    assert_eq!(report.len(), 3);
    for lock in &report.locks {
        assert_eq!(lock.acquisitions, 40);
        assert!(lock.avg_lock_latency > 0.0);
        assert!(lock.avg_cs_latency > 0.0);
    }
}

/// Try-lock acquisitions are profiled through the shards too.
#[test]
fn profile_report_counts_try_lock_acquisitions() {
    let svc = GlsService::with_config(GlsConfig::profile());
    let addr = 0xDD_0000usize;
    assert!(svc.try_lock_addr(addr).unwrap());
    assert!(!svc.try_lock_addr(addr).unwrap(), "second try must fail");
    svc.unlock_addr(addr).unwrap();
    let report = svc.profile_report();
    assert_eq!(report.locks[0].acquisitions, 1);
}

mod churn_proptest {
    use super::*;
    use proptest::prelude::*;

    const SHARED_ADDRS: [usize; 4] = [0xE0_0000, 0xE0_0040, 0xE0_0080, 0xE0_00C0];
    const CHURN_ADDRS: [usize; 3] = [0xF0_0000, 0xF0_0040, 0xF0_0080];

    /// One scheduled step of a worker thread.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        /// Blocking lock + guarded counter increment on a never-freed
        /// address (mutual exclusion asserted exactly).
        LockShared(usize),
        /// try-lock/unlock on an address other threads may free at any
        /// moment (exercises resurrection and the unlock fallback; never
        /// blocks, so a racing free can never hang the schedule).
        TryChurn(usize),
        /// Free a churn address (the next TryChurn re-creates it).
        FreeChurn(usize),
        /// Cache-populating read-only probe of a churn address.
        Observe(usize),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0usize..SHARED_ADDRS.len()).prop_map(Op::LockShared),
            (0usize..CHURN_ADDRS.len()).prop_map(Op::TryChurn),
            (0usize..CHURN_ADDRS.len()).prop_map(Op::FreeChurn),
            (0usize..CHURN_ADDRS.len()).prop_map(Op::Observe),
        ]
    }

    fn schedule_strategy() -> impl Strategy<Value = Vec<Vec<Op>>> {
        proptest::collection::vec(proptest::collection::vec(op_strategy(), 1..120), 3..4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Free/recreate churn racing real lock traffic: counters guarded
        /// by never-freed locks stay exact (no lost updates ⇒ no stale
        /// cached mapping ever bypassed mutual exclusion), no operation
        /// panics or strands, and the retired set stays bounded.
        #[test]
        fn free_recreate_churn_preserves_exclusion(schedule in schedule_strategy()) {
            let svc = Arc::new(GlsService::new());
            let counters: Arc<Vec<AtomicU64>> =
                Arc::new((0..SHARED_ADDRS.len()).map(|_| AtomicU64::new(0)).collect());
            let barrier = Arc::new(Barrier::new(schedule.len()));
            let handles: Vec<_> = schedule
                .into_iter()
                .map(|ops| {
                    let svc = Arc::clone(&svc);
                    let counters = Arc::clone(&counters);
                    let barrier = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        barrier.wait();
                        let mut shared_ops = 0u64;
                        for op in ops {
                            match op {
                                Op::LockShared(i) => {
                                    let addr = SHARED_ADDRS[i];
                                    svc.lock_addr(addr).unwrap();
                                    // Racy read-modify-write: only mutual
                                    // exclusion makes the final sum exact.
                                    let v = counters[i].load(Ordering::Relaxed);
                                    gls_runtime::spin_cycles(20);
                                    counters[i].store(v + 1, Ordering::Relaxed);
                                    svc.unlock_addr(addr).unwrap();
                                    shared_ops += 1;
                                }
                                Op::TryChurn(j) => {
                                    let addr = CHURN_ADDRS[j];
                                    // TTAS entries: misdirected releases in
                                    // the (buggy-by-definition) free-while-
                                    // held races stay benign stores.
                                    if svc.try_lock_with(LockKind::Ttas, addr).unwrap() {
                                        gls_runtime::spin_cycles(10);
                                        svc.unlock_with(LockKind::Ttas, addr).unwrap();
                                    }
                                }
                                Op::FreeChurn(j) => {
                                    let _ = svc.free_addr(CHURN_ADDRS[j]);
                                }
                                Op::Observe(j) => {
                                    let _ = svc.algorithm_of(CHURN_ADDRS[j]);
                                }
                            }
                        }
                        shared_ops
                    })
                })
                .collect();
            let mut expected = 0u64;
            for h in handles {
                expected += h.join().unwrap();
            }
            let total: u64 = counters.iter().map(|c| c.load(Ordering::Relaxed)).sum();
            prop_assert_eq!(total, expected, "lost update ⇒ exclusion was bypassed");
            // Churn never leaks more than its working set (plus the rare
            // displaced duplicate from a create racing a free).
            prop_assert!(svc.retired_count() <= CHURN_ADDRS.len() + 3);
            // Every address still works after the churn settles.
            for &addr in CHURN_ADDRS.iter().chain(SHARED_ADDRS.iter()) {
                svc.lock_addr(addr).unwrap();
                svc.unlock_addr(addr).unwrap();
            }
        }
    }
}
