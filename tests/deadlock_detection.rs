//! Runtime deadlock detection (§4.2): real threads, real locks, real cycle.

// Integration stress tests drive real OS threads on wall-clock time;
// raw std sync and sleeps are the point here (see clippy.toml).
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

use gls::{GlsConfig, GlsError, GlsService};

fn debug_service(threshold_ms: u64) -> Arc<GlsService> {
    Arc::new(GlsService::with_config(
        GlsConfig::debug().with_deadlock_check_after(Duration::from_millis(threshold_ms)),
    ))
}

#[test]
fn two_thread_lock_order_inversion_is_detected() {
    let svc = debug_service(100);
    let barrier = Arc::new(Barrier::new(2));
    let addr_a = 0xA0_usize;
    let addr_b = 0xB0_usize;

    let spawn = |first: usize, second: usize| {
        let svc = Arc::clone(&svc);
        let barrier = Arc::clone(&barrier);
        thread::spawn(move || {
            svc.lock_addr(first).unwrap();
            barrier.wait();
            let result = svc.lock_addr(second);
            if result.is_ok() {
                svc.unlock_addr(second).unwrap();
            }
            svc.unlock_addr(first).unwrap();
            result
        })
    };

    let t1 = spawn(addr_a, addr_b);
    let t2 = spawn(addr_b, addr_a);
    let results = [t1.join().unwrap(), t2.join().unwrap()];

    // At least one thread must have been told about the deadlock; the other
    // may then have proceeded normally once the first backed off.
    let deadlocks: Vec<&GlsError> = results.iter().filter_map(|r| r.as_ref().err()).collect();
    assert!(
        !deadlocks.is_empty(),
        "lock-order inversion must be detected"
    );
    for issue in deadlocks {
        match issue {
            GlsError::Deadlock { cycle } => {
                assert!(cycle.len() >= 2);
                // The cycle must mention both addresses.
                let addrs: Vec<usize> = cycle.iter().map(|(_, a)| *a).collect();
                assert!(addrs.contains(&addr_a) || addrs.contains(&addr_b));
            }
            other => panic!("expected a deadlock report, got {other:?}"),
        }
    }
    // The service log has the same information.
    assert!(svc.issues().iter().any(|i| i.category() == "deadlock"));

    // The confirming thread dumped its flight recorder: the trail must be
    // non-empty and end with the deadlock-candidate event itself.
    let trails = svc.deadlock_trails();
    assert!(
        !trails.is_empty(),
        "a confirmed deadlock must leave a flight-recorder trail"
    );
    for trail in &trails {
        assert!(trail.cycle.len() >= 2);
        assert!(
            !trail.events.is_empty(),
            "the dumped flight-recorder trail must be non-empty"
        );
        assert!(
            trail
                .events
                .iter()
                .any(|e| e.kind == gls_runtime::FlightEventKind::DeadlockCandidate),
            "the trail must record the deadlock candidate event"
        );
    }

    // The snapshot counts the confirmation.
    let snapshot = svc.telemetry_snapshot();
    assert!(snapshot.deadlock.confirmed >= 1);
}

#[test]
fn three_thread_cycle_is_detected() {
    let svc = debug_service(100);
    let barrier = Arc::new(Barrier::new(3));
    let addrs = [0x111_usize, 0x222, 0x333];

    let spawn = |first: usize, second: usize| {
        let svc = Arc::clone(&svc);
        let barrier = Arc::clone(&barrier);
        thread::spawn(move || {
            svc.lock_addr(first).unwrap();
            barrier.wait();
            let result = svc.lock_addr(second);
            if result.is_ok() {
                svc.unlock_addr(second).unwrap();
            }
            svc.unlock_addr(first).unwrap();
            result
        })
    };

    let t1 = spawn(addrs[0], addrs[1]);
    let t2 = spawn(addrs[1], addrs[2]);
    let t3 = spawn(addrs[2], addrs[0]);
    let results = [t1.join().unwrap(), t2.join().unwrap(), t3.join().unwrap()];

    assert!(
        results.iter().any(|r| r.is_err()),
        "a three-way cycle must be reported to at least one participant"
    );
    let reported = svc
        .issues()
        .into_iter()
        .filter(|i| i.category() == "deadlock")
        .count();
    assert!(reported >= 1);
}

#[test]
fn no_false_positives_without_a_cycle() {
    // Heavy but deadlock-free usage with a low detection threshold: the
    // detector must never fire.
    let svc = debug_service(20);
    let svc2 = Arc::clone(&svc);
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let svc = Arc::clone(&svc2);
            thread::spawn(move || {
                for i in 0..2_000usize {
                    // Consistent global order (ascending addresses): no cycle.
                    let a = 0x800 + ((t + i) % 4) * 8;
                    let b = a + 64;
                    svc.lock_addr(a).unwrap();
                    svc.lock_addr(b).unwrap();
                    gls_runtime::spin_cycles(100);
                    svc.unlock_addr(b).unwrap();
                    svc.unlock_addr(a).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert!(
        !svc.issues().iter().any(|i| i.category() == "deadlock"),
        "deadlock detector must not produce false positives: {:?}",
        svc.issues()
    );
}

#[test]
fn waiting_thread_eventually_reports_even_if_owner_never_releases() {
    // A "stuck owner" scenario: the owner grabs the lock and never releases;
    // the waiter should NOT report a deadlock (there is no cycle), it should
    // keep waiting. We verify the detector stays quiet and the waiter makes
    // progress once the owner finally releases.
    let svc = debug_service(50);
    svc.lock_addr(0xF00).unwrap();
    let svc2 = Arc::clone(&svc);
    let waiter = thread::spawn(move || svc2.lock_addr(0xF00).map(|()| svc2.unlock_addr(0xF00)));
    thread::sleep(Duration::from_millis(300));
    assert!(
        !svc.issues().iter().any(|i| i.category() == "deadlock"),
        "a single blocked thread is not a deadlock"
    );
    svc.unlock_addr(0xF00).unwrap();
    waiter.join().unwrap().unwrap().unwrap();
}
