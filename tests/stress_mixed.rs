//! Mixed stress test: guards, explicit algorithms, trylocks, frees and
//! profiling all exercised together from many threads.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gls::{GlsConfig, GlsService, LockKind};

#[test]
fn mixed_api_stress() {
    let svc = Arc::new(GlsService::new());
    let successes = Arc::new(AtomicU64::new(0));
    const ADDRESSES: usize = 24;

    let handles: Vec<_> = (0..8usize)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let successes = Arc::clone(&successes);
            std::thread::spawn(move || {
                let mut x = (t as u64 + 1) * 0x9E3779B9;
                for i in 0..20_000usize {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let addr = 0x2000 + (x as usize % ADDRESSES) * 8;
                    match i % 4 {
                        0 => {
                            // RAII guard.
                            let _g = svc.guard_addr(addr).unwrap();
                            successes.fetch_add(1, Ordering::Relaxed);
                        }
                        1 => {
                            // Plain lock/unlock.
                            svc.lock_addr(addr).unwrap();
                            successes.fetch_add(1, Ordering::Relaxed);
                            svc.unlock_addr(addr).unwrap();
                        }
                        2 => {
                            // Trylock, possibly failing.
                            if svc.try_lock_addr(addr).unwrap() {
                                successes.fetch_add(1, Ordering::Relaxed);
                                svc.unlock_addr(addr).unwrap();
                            }
                        }
                        _ => {
                            // Explicit algorithm on a disjoint address range so
                            // the same address always uses one algorithm.
                            let explicit = 0x9_0000 + (x as usize % 8) * 8;
                            svc.lock_with(LockKind::Ticket, explicit).unwrap();
                            successes.fetch_add(1, Ordering::Relaxed);
                            svc.unlock_with(LockKind::Ticket, explicit).unwrap();
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert!(successes.load(Ordering::Relaxed) > 0);
    assert!(svc.lock_count() >= ADDRESSES);
    // No issues should have been recorded in normal mode.
    assert!(svc.issues().is_empty());
}

#[test]
fn per_thread_lock_cache_survives_interleaved_addresses() {
    // Alternate rapidly between two addresses per thread so the single-entry
    // lock cache keeps missing; correctness must not depend on hits.
    let svc = Arc::new(GlsService::new());
    struct Pair(std::cell::UnsafeCell<(u64, u64)>);
    // SAFETY: the cell is only touched while holding the lock under test;
    // that exclusion is exactly what the test verifies.
    unsafe impl Sync for Pair {}
    let pair = Arc::new(Pair(std::cell::UnsafeCell::new((0, 0))));

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let pair = Arc::clone(&pair);
            std::thread::spawn(move || {
                for _ in 0..10_000 {
                    svc.lock_addr(0xAAA0).unwrap();
                    // SAFETY: written while holding the lock under test.
                    unsafe { (*pair.0.get()).0 += 1 };
                    svc.unlock_addr(0xAAA0).unwrap();

                    svc.lock_addr(0xBBB0).unwrap();
                    // SAFETY: written while holding the lock under test.
                    unsafe { (*pair.0.get()).1 += 1 };
                    svc.unlock_addr(0xBBB0).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // SAFETY: all worker threads are joined; nothing races this read.
    let (a, b) = unsafe { *pair.0.get() };
    assert_eq!(a, 80_000);
    assert_eq!(b, 80_000);
}

#[test]
fn profiling_service_under_stress_reports_every_lock() {
    let svc = Arc::new(GlsService::with_config(GlsConfig::profile()));
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                for i in 0..5_000usize {
                    let addr = 0x3000 + ((i + t) % 10) * 8;
                    svc.lock_addr(addr).unwrap();
                    svc.unlock_addr(addr).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let report = svc.profile_report();
    assert_eq!(report.len(), 10);
    let total: u64 = report.locks.iter().map(|l| l.acquisitions).sum();
    assert_eq!(total, 30_000);
}

#[test]
fn guards_can_be_held_across_nested_addresses() {
    let svc = GlsService::new();
    let outer = 0x111_usize;
    let inner = 0x222_usize;
    for _ in 0..1_000 {
        let _a = svc.guard_addr(outer).unwrap();
        let _b = svc.guard_addr(inner).unwrap();
        // Guards drop in reverse order (inner first), which is the correct
        // nesting discipline.
    }
    assert_eq!(svc.lock_count(), 2);
}
