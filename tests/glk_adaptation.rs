//! Cross-crate integration tests for GLK adaptation: the lock must pick the
//! mode the paper predicts for each contention regime and must keep mutual
//! exclusion while switching.

// Integration stress tests drive real OS threads on wall-clock time;
// raw std sync and sleeps are the point here (see clippy.toml).
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gls::glk::{GlkConfig, GlkLock, GlkMode, MonitorHandle};
use gls_runtime::sysload::{SystemLoadConfig, SystemLoadMonitor};

fn fast_config() -> GlkConfig {
    GlkConfig::default()
        .with_adaptation_period(256)
        .with_sampling_period(16)
        .with_transition_recording(true)
}

fn run_contended(lock: &Arc<GlkLock>, threads: usize, cs_cycles: u64, duration: Duration) -> u64 {
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let lock = Arc::clone(lock);
            let stop = Arc::clone(&stop);
            let total = Arc::clone(&total);
            std::thread::spawn(move || {
                let mut local = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    lock.lock();
                    gls_runtime::spin_cycles(cs_cycles);
                    lock.unlock();
                    local += 1;
                }
                total.fetch_add(local, Ordering::Relaxed);
            })
        })
        .collect();
    std::thread::sleep(duration);
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    total.load(Ordering::Relaxed)
}

#[test]
fn single_threaded_lock_stays_in_ticket_mode() {
    let lock = GlkLock::with_config(fast_config());
    for _ in 0..10_000 {
        lock.lock();
        lock.unlock();
    }
    assert_eq!(lock.mode(), GlkMode::Ticket);
    assert_eq!(lock.acquisitions(), 10_000);
    assert!(lock.transitions().is_empty());
}

#[test]
fn contended_lock_adapts_to_mcs_and_back() {
    let monitor = Arc::new(SystemLoadMonitor::manual(SystemLoadConfig::default()));
    let lock = Arc::new(GlkLock::with_config_and_monitor(
        fast_config(),
        MonitorHandle::Custom(monitor),
    ));

    // Phase 1: 8 threads hammer the lock; it should switch to mcs mode.
    let ops = run_contended(&lock, 8, 600, Duration::from_millis(800));
    assert!(ops > 0);
    assert_eq!(
        lock.mode(),
        GlkMode::Mcs,
        "high contention should move GLK to mcs (smoothed queue = {:.2})",
        lock.smoothed_queue()
    );

    // Phase 2: contention disappears; the lock should fall back to ticket.
    for _ in 0..5_000 {
        lock.lock();
        lock.unlock();
    }
    assert_eq!(lock.mode(), GlkMode::Ticket);

    // The transition log must show both directions.
    let transitions = lock.transitions();
    assert!(transitions
        .iter()
        .any(|t| t.from == GlkMode::Ticket && t.to == GlkMode::Mcs));
    assert!(transitions
        .iter()
        .any(|t| t.from == GlkMode::Mcs && t.to == GlkMode::Ticket));
}

#[test]
fn multiprogramming_moves_contended_lock_to_mutex_mode() {
    let monitor = Arc::new(SystemLoadMonitor::manual(SystemLoadConfig::default()));
    let hw = gls_runtime::hardware_contexts();
    let guards: Vec<_> = (0..hw * 2 + 4).map(|_| monitor.runnable_guard()).collect();
    monitor.poll_once();
    assert!(monitor.is_multiprogrammed());

    let lock = Arc::new(GlkLock::with_config_and_monitor(
        fast_config(),
        MonitorHandle::Custom(Arc::clone(&monitor)),
    ));
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let lock = Arc::clone(&lock);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    lock.lock();
                    gls_runtime::spin_cycles(400);
                    lock.unlock();
                }
            })
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(15);
    while lock.mode() != GlkMode::Mutex && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(lock.mode(), GlkMode::Mutex);
    drop(guards);
}

#[test]
fn mutual_exclusion_holds_across_thousands_of_adaptations() {
    // Tiny periods force constant re-evaluation; a non-atomic counter exposes
    // any mutual-exclusion gap during mode switches.
    struct Shared(std::cell::UnsafeCell<u64>);
    // SAFETY: the cell is only touched while holding the lock under test;
    // that exclusion is exactly what the test verifies.
    unsafe impl Sync for Shared {}

    let lock = Arc::new(GlkLock::with_config(
        GlkConfig::default()
            .with_adaptation_period(32)
            .with_sampling_period(4),
    ));
    let shared = Arc::new(Shared(std::cell::UnsafeCell::new(0)));
    let threads = 8;
    let iters = 20_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let lock = Arc::clone(&lock);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for _ in 0..iters {
                    lock.lock();
                    // SAFETY: written while holding the lock under test.
                    unsafe { *shared.0.get() += 1 };
                    lock.unlock();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // SAFETY: all worker threads are joined; nothing races this read.
    assert_eq!(unsafe { *shared.0.get() }, threads as u64 * iters);
    // `num_acquired` counts low-level acquisitions, which includes the extra
    // acquisition performed when a thread adapts the mode and retries, so it
    // can slightly exceed the number of critical sections.
    assert!(lock.acquisitions() >= threads as u64 * iters);
    assert!(lock.acquisitions() < threads as u64 * iters + 10_000);
}

#[test]
fn try_lock_never_blocks_and_never_double_grants() {
    let lock = Arc::new(GlkLock::with_config(fast_config()));
    let holders = Arc::new(AtomicU64::new(0));
    let violations = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let lock = Arc::clone(&lock);
            let holders = Arc::clone(&holders);
            let violations = Arc::clone(&violations);
            std::thread::spawn(move || {
                for _ in 0..50_000 {
                    if lock.try_lock() {
                        if holders.fetch_add(1, Ordering::AcqRel) != 0 {
                            violations.fetch_add(1, Ordering::Relaxed);
                        }
                        holders.fetch_sub(1, Ordering::AcqRel);
                        lock.unlock();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(violations.load(Ordering::Relaxed), 0);
}
