//! Cross-crate integration suite for the parking subsystem: futex locks
//! reached through the GLS service, the condvar interface under every
//! service mode, and the debug-mode guarantees (no phantom deadlock
//! reports from sleeping waiters).

// Integration stress tests drive real OS threads on wall-clock time;
// raw std sync and sleeps are the point here (see clippy.toml).
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gls::glk::BlockingBackend;
use gls::{GlkConfig, GlsCondvar, GlsConfig, GlsMode, GlsService};
use gls_locks::{FutexLock, FutexRwLock, LockKind};

#[test]
fn futex_raw_state_is_one_word() {
    // The acceptance criterion of the parking subsystem: the whole per-lock
    // state of the futex locks is a single AtomicU32.
    assert_eq!(std::mem::size_of::<FutexLock>(), 4);
    assert_eq!(std::mem::size_of::<FutexRwLock>(), 4);
}

#[test]
fn futex_locks_work_through_the_explicit_gls_interface() {
    let svc = Arc::new(GlsService::new());
    let counter = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || {
                for i in 0..5_000usize {
                    let addr = 0xF000 + (i % 8) * 64;
                    svc.lock_with(LockKind::Futex, addr).unwrap();
                    counter.fetch_add(1, Ordering::Relaxed);
                    svc.unlock_addr(addr).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.load(Ordering::Relaxed), 30_000);
    assert_eq!(svc.algorithm_of(0xF000), Some(LockKind::Futex));
}

#[test]
fn futex_rw_entries_share_reads_through_the_service() {
    let svc = GlsService::new();
    svc.lock_with(LockKind::FutexRw, 0xF800).unwrap();
    svc.unlock_with(LockKind::FutexRw, 0xF800).unwrap();
    assert_eq!(svc.algorithm_of(0xF800), Some(LockKind::FutexRw));
    // The rw read path routes shared acquisitions to the futex rwlock.
    svc.read_lock_addr(0xF800).unwrap();
    svc.read_lock_addr(0xF800).unwrap();
    assert!(!svc.try_write_lock_addr(0xF800).unwrap());
    svc.read_unlock_addr(0xF800).unwrap();
    svc.read_unlock_addr(0xF800).unwrap();
    assert!(svc.try_write_lock_addr(0xF800).unwrap());
    svc.write_unlock_addr(0xF800).unwrap();
}

#[test]
fn glk_with_parking_backend_keeps_exclusion_through_the_service() {
    // The default GLK interface with the parking-lot blocking backend:
    // word-sized mutex mode behind the full service machinery.
    let svc = Arc::new(GlsService::with_config(
        GlsConfig::default().with_glk(
            GlkConfig::default()
                .with_adaptation_period(128)
                .with_sampling_period(16)
                .with_blocking_backend(BlockingBackend::ParkingLot),
        ),
    ));
    struct Cell(std::cell::UnsafeCell<u64>);
    // SAFETY: the cell is only touched while holding the lock under test;
    // that exclusion is exactly what the test verifies.
    unsafe impl Sync for Cell {}
    let value = Arc::new(Cell(std::cell::UnsafeCell::new(0)));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let value = Arc::clone(&value);
            std::thread::spawn(move || {
                for _ in 0..5_000 {
                    svc.lock_addr(0xAB00).unwrap();
                    // SAFETY: written while holding the lock under test.
                    unsafe { *value.0.get() += 1 };
                    svc.unlock_addr(0xAB00).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // SAFETY: all worker threads are joined; nothing races this read.
    assert_eq!(unsafe { *value.0.get() }, 40_000);
}

/// Multi-producer/multi-consumer condvar pipeline under the debug mode:
/// the acceptance-critical integration test. Sleeping condvar waiters own
/// nothing and publish no waits-for edges, so the deadlock detector — with
/// an aggressive confirmation threshold — must stay silent.
#[test]
fn condvar_mpmc_under_debug_mode_reports_no_false_deadlocks() {
    let service = Arc::new(GlsService::with_config(
        GlsConfig::default()
            .with_mode(GlsMode::Debug)
            .with_deadlock_check_after(Duration::from_millis(40)),
    ));
    let config = gls_workloads::PcConfig {
        producers: 3,
        consumers: 3,
        capacity: 4,
        items_per_producer: 3_000,
        wait_timeout: Duration::from_millis(25),
    };
    let result = gls_workloads::pc_bench::run(&service, &config);
    assert_eq!(result.produced, 9_000);
    assert_eq!(result.consumed, 9_000);
    assert_eq!(
        result.checksum,
        gls_workloads::pc_bench::expected_checksum(&config),
        "every item delivered exactly once"
    );
    assert!(
        service.issues().is_empty(),
        "condvar waits must never produce (phantom) debug reports: {:?}",
        service.issues()
    );
}

#[test]
fn wait_timeout_expires_and_reacquires_the_mutex() {
    let svc = GlsService::new();
    let cv = GlsCondvar::new();
    svc.lock_addr(0xCC00).unwrap();
    let start = Instant::now();
    let outcome = svc
        .wait_timeout_addr(&cv, 0xCC00, Duration::from_millis(50))
        .unwrap();
    assert!(outcome.timed_out());
    assert!(start.elapsed() >= Duration::from_millis(50));
    // The mutex was re-acquired on the way out.
    assert!(!svc.try_lock_addr(0xCC00).unwrap());
    svc.unlock_addr(0xCC00).unwrap();
    assert_eq!(cv.timeouts(), 1);
}

#[test]
fn debug_mode_flags_waiting_without_holding() {
    let svc = GlsService::with_config(GlsConfig::debug());
    let cv = GlsCondvar::new();
    // Waiting with a mutex that was never locked is the same class of bug
    // as releasing it.
    let err = svc
        .wait_timeout_addr(&cv, 0xDD00, Duration::from_millis(10))
        .unwrap_err();
    assert_eq!(err.category(), "release-free-lock");
    assert!(!svc.issues().is_empty());
}

#[test]
fn notify_one_hands_over_fifo_and_notify_all_drains() {
    let svc = Arc::new(GlsService::new());
    let cv = Arc::new(GlsCondvar::new());
    let woken = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let cv = Arc::clone(&cv);
            let woken = Arc::clone(&woken);
            std::thread::spawn(move || {
                svc.lock_addr(0xEE00).unwrap();
                svc.wait_addr(&cv, 0xEE00).unwrap();
                svc.unlock_addr(0xEE00).unwrap();
                woken.fetch_add(1, Ordering::Release);
            })
        })
        .collect();
    while cv.waiters() < 4 {
        std::thread::yield_now();
    }
    assert!(cv.notify_one());
    let deadline = Instant::now() + Duration::from_secs(5);
    while woken.load(Ordering::Acquire) < 1 && Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(
        woken.load(Ordering::Acquire),
        1,
        "notify_one wakes exactly one"
    );
    assert_eq!(cv.notify_all(), 3);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(woken.load(Ordering::Acquire), 4);
    assert_eq!(cv.waiters(), 0);
}

#[test]
fn backend_migration_under_load_loses_no_wakeups() {
    // Tentpole stress: flip the blocking backend PerLock <-> ParkingLot
    // *while* threads hold and wait on the locks. The service runs every
    // lock in mutex mode (initial mode, adaptation off) with the Auto
    // backend and a tiny density threshold; a churn thread oscillates the
    // density across the threshold so every release is a migration
    // opportunity. Waiters parked on the old backend must drain through
    // the acquire-recheck-retry protocol: the exact final counter proves
    // no double-admission (double-unpark) and the test completing proves
    // no lost wakeup.
    use gls::glk::{DensityHandle, GlkMode};
    let config = GlsConfig::default().with_glk(
        GlkConfig::default()
            .with_initial_mode(GlkMode::Mutex)
            .without_adaptation()
            .with_blocking_backend(BlockingBackend::Auto)
            .with_blocking_density_threshold(4),
    );
    let svc = Arc::new(GlsService::with_config(config));
    let density = match &svc.config().glk.density {
        DensityHandle::Custom(d) => Arc::clone(d),
        DensityHandle::Global => panic!("services wire their own density tracker"),
    };
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let churn = {
        let stop = Arc::clone(&stop);
        let density = Arc::clone(&density);
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                for _ in 0..8 {
                    density.enter();
                }
                std::thread::yield_now();
                for _ in 0..8 {
                    density.leave();
                }
            }
        })
    };
    let counter = Arc::new(AtomicU64::new(0));
    let workers: Vec<_> = (0..6)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || {
                for i in 0..5_000usize {
                    let addr = 0xA100 + ((t + i) % 2) * 64;
                    svc.lock_addr(addr).unwrap();
                    counter.fetch_add(1, Ordering::Relaxed);
                    gls_runtime::spin_cycles(200);
                    svc.unlock_addr(addr).unwrap();
                }
            })
        })
        .collect();
    for h in workers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    churn.join().unwrap();
    assert_eq!(counter.load(Ordering::Relaxed), 30_000);
    assert_eq!(
        svc.blocking_lock_count(),
        2,
        "both mutex-mode locks count as live blocking locks"
    );
}

#[test]
fn condvar_requeue_mpmc_loses_no_items() {
    // Requeue-on-notify correctness under MPMC churn: producers notify
    // while *holding* the futex-backed mutex (so every notify takes the
    // requeue path and the waiter is woken by the mutex release, not the
    // notify), consumers wait in the standard predicate loop. Every
    // produced item must be consumed exactly once.
    struct Queue(std::cell::UnsafeCell<std::collections::VecDeque<u64>>);
    // SAFETY: the queue cell is only touched while holding the service
    // mutex at `addr`.
    unsafe impl Sync for Queue {}
    const PRODUCERS: u64 = 3;
    const CONSUMERS: usize = 4;
    const PER_PRODUCER: u64 = 3_000;

    let svc = Arc::new(GlsService::new());
    let cv = Arc::new(GlsCondvar::new());
    let queue = Arc::new(Queue(std::cell::UnsafeCell::new(Default::default())));
    let addr = 0xCAFE;
    // The mutex entry is futex-backed: notify_one_addr requeues onto it.
    svc.lock_with(LockKind::Futex, addr).unwrap();
    svc.unlock_addr(addr).unwrap();
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let (svc, cv, queue, done) = (
                Arc::clone(&svc),
                Arc::clone(&cv),
                Arc::clone(&queue),
                Arc::clone(&done),
            );
            std::thread::spawn(move || {
                let mut sum = 0u64;
                loop {
                    svc.lock_addr(addr).unwrap();
                    let item = loop {
                        // SAFETY: guarded by the GLS mutex on `addr`.
                        let q = unsafe { &mut *queue.0.get() };
                        if let Some(item) = q.pop_front() {
                            break Some(item);
                        }
                        if done.load(Ordering::Acquire) {
                            break None;
                        }
                        svc.wait_addr(&cv, addr).unwrap();
                    };
                    svc.unlock_addr(addr).unwrap();
                    match item {
                        Some(v) => sum += v,
                        None => return sum,
                    }
                }
            })
        })
        .collect();

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let (svc, cv, queue) = (Arc::clone(&svc), Arc::clone(&cv), Arc::clone(&queue));
            std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    svc.lock_addr(addr).unwrap();
                    // SAFETY: guarded by the GLS mutex on `addr`.
                    unsafe { (*queue.0.get()).push_back(p * PER_PRODUCER + i + 1) };
                    // Notify while holding the mutex: the waiter must be
                    // requeued onto the mutex and woken by the unlock below.
                    svc.notify_one_addr(&cv, addr);
                    svc.unlock_addr(addr).unwrap();
                }
            })
        })
        .collect();
    for h in producers {
        h.join().unwrap();
    }
    svc.lock_addr(addr).unwrap();
    done.store(true, Ordering::Release);
    svc.notify_all_addr(&cv, addr);
    svc.unlock_addr(addr).unwrap();

    let consumed: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
    let n = PRODUCERS * PER_PRODUCER;
    assert_eq!(
        consumed,
        n * (n + 1) / 2,
        "every produced item consumed exactly once"
    );
    assert_eq!(cv.waiters(), 0);
}

#[test]
fn requeued_waiters_survive_a_backend_migration() {
    // Regression for the requeue/migration interaction: condvar waiters
    // requeued onto a futex-backed mutex never re-release the futex word,
    // so a release that migrates the blocking backend away from the
    // parking lot must *broadcast* to the old queue — with a one-wakeup
    // release, everyone queued behind the first requeued waiter would
    // sleep forever.
    use gls::glk::{DensityHandle, GlkMode};
    let config = GlsConfig::default().with_glk(
        GlkConfig::default()
            .with_initial_mode(GlkMode::Mutex)
            .without_adaptation()
            .with_blocking_backend(BlockingBackend::Auto)
            // Threshold 4: 4 manual entries + the lock itself put the
            // first use past it (parking backend); dropping back to 1
            // live lock falls below the x1/2 hysteresis (1*2 < 4), so the
            // release after the drop really migrates.
            .with_blocking_density_threshold(4),
    );
    let svc = Arc::new(GlsService::with_config(config));
    let density = match &svc.config().glk.density {
        DensityHandle::Custom(d) => Arc::clone(d),
        DensityHandle::Global => panic!("services wire their own density tracker"),
    };
    // Past the threshold before first use: the lock decides PARKING.
    for _ in 0..4 {
        density.enter();
    }
    let cv = Arc::new(GlsCondvar::new());
    let addr = 0x9A7E;
    let woken = Arc::new(AtomicU64::new(0));
    let waiters: Vec<_> = (0..3)
        .map(|_| {
            let (svc, cv, woken) = (Arc::clone(&svc), Arc::clone(&cv), Arc::clone(&woken));
            std::thread::spawn(move || {
                svc.lock_addr(addr).unwrap();
                svc.wait_addr(&cv, addr).unwrap();
                svc.unlock_addr(addr).unwrap();
                woken.fetch_add(1, Ordering::Release);
            })
        })
        .collect();
    while cv.waiters() < 3 {
        std::thread::yield_now();
    }
    // Hold the (parking-backed) mutex and morph the whole broadcast onto
    // its futex word.
    svc.lock_addr(addr).unwrap();
    assert_eq!(svc.notify_all_addr(&cv, addr), 3);
    // Now force the next release to migrate the backend away from the
    // parking lot: the release must broadcast, or two of the three
    // requeued waiters strand under the abandoned futex word.
    for _ in 0..4 {
        density.leave();
    }
    svc.unlock_addr(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    while woken.load(Ordering::Acquire) < 3 {
        assert!(
            Instant::now() < deadline,
            "requeued waiters stranded across the backend migration \
             ({} of 3 woke)",
            woken.load(Ordering::Acquire)
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    for h in waiters {
        h.join().unwrap();
    }
}
