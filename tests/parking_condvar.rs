//! Cross-crate integration suite for the parking subsystem: futex locks
//! reached through the GLS service, the condvar interface under every
//! service mode, and the debug-mode guarantees (no phantom deadlock
//! reports from sleeping waiters).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gls::glk::BlockingBackend;
use gls::{GlkConfig, GlsCondvar, GlsConfig, GlsMode, GlsService};
use gls_locks::{FutexLock, FutexRwLock, LockKind};

#[test]
fn futex_raw_state_is_one_word() {
    // The acceptance criterion of the parking subsystem: the whole per-lock
    // state of the futex locks is a single AtomicU32.
    assert_eq!(std::mem::size_of::<FutexLock>(), 4);
    assert_eq!(std::mem::size_of::<FutexRwLock>(), 4);
}

#[test]
fn futex_locks_work_through_the_explicit_gls_interface() {
    let svc = Arc::new(GlsService::new());
    let counter = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..6)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || {
                for i in 0..5_000usize {
                    let addr = 0xF000 + (i % 8) * 64;
                    svc.lock_with(LockKind::Futex, addr).unwrap();
                    counter.fetch_add(1, Ordering::Relaxed);
                    svc.unlock_addr(addr).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(counter.load(Ordering::Relaxed), 30_000);
    assert_eq!(svc.algorithm_of(0xF000), Some(LockKind::Futex));
}

#[test]
fn futex_rw_entries_share_reads_through_the_service() {
    let svc = GlsService::new();
    svc.lock_with(LockKind::FutexRw, 0xF800).unwrap();
    svc.unlock_with(LockKind::FutexRw, 0xF800).unwrap();
    assert_eq!(svc.algorithm_of(0xF800), Some(LockKind::FutexRw));
    // The rw read path routes shared acquisitions to the futex rwlock.
    svc.read_lock_addr(0xF800).unwrap();
    svc.read_lock_addr(0xF800).unwrap();
    assert!(!svc.try_write_lock_addr(0xF800).unwrap());
    svc.read_unlock_addr(0xF800).unwrap();
    svc.read_unlock_addr(0xF800).unwrap();
    assert!(svc.try_write_lock_addr(0xF800).unwrap());
    svc.write_unlock_addr(0xF800).unwrap();
}

#[test]
fn glk_with_parking_backend_keeps_exclusion_through_the_service() {
    // The default GLK interface with the parking-lot blocking backend:
    // word-sized mutex mode behind the full service machinery.
    let svc = Arc::new(GlsService::with_config(
        GlsConfig::default().with_glk(
            GlkConfig::default()
                .with_adaptation_period(128)
                .with_sampling_period(16)
                .with_blocking_backend(BlockingBackend::ParkingLot),
        ),
    ));
    struct Cell(std::cell::UnsafeCell<u64>);
    unsafe impl Sync for Cell {}
    let value = Arc::new(Cell(std::cell::UnsafeCell::new(0)));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let value = Arc::clone(&value);
            std::thread::spawn(move || {
                for _ in 0..5_000 {
                    svc.lock_addr(0xAB00).unwrap();
                    unsafe { *value.0.get() += 1 };
                    svc.unlock_addr(0xAB00).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(unsafe { *value.0.get() }, 40_000);
}

/// Multi-producer/multi-consumer condvar pipeline under the debug mode:
/// the acceptance-critical integration test. Sleeping condvar waiters own
/// nothing and publish no waits-for edges, so the deadlock detector — with
/// an aggressive confirmation threshold — must stay silent.
#[test]
fn condvar_mpmc_under_debug_mode_reports_no_false_deadlocks() {
    let service = Arc::new(GlsService::with_config(
        GlsConfig::default()
            .with_mode(GlsMode::Debug)
            .with_deadlock_check_after(Duration::from_millis(40)),
    ));
    let config = gls_workloads::PcConfig {
        producers: 3,
        consumers: 3,
        capacity: 4,
        items_per_producer: 3_000,
        wait_timeout: Duration::from_millis(25),
    };
    let result = gls_workloads::pc_bench::run(&service, &config);
    assert_eq!(result.produced, 9_000);
    assert_eq!(result.consumed, 9_000);
    assert_eq!(
        result.checksum,
        gls_workloads::pc_bench::expected_checksum(&config),
        "every item delivered exactly once"
    );
    assert!(
        service.issues().is_empty(),
        "condvar waits must never produce (phantom) debug reports: {:?}",
        service.issues()
    );
}

#[test]
fn wait_timeout_expires_and_reacquires_the_mutex() {
    let svc = GlsService::new();
    let cv = GlsCondvar::new();
    svc.lock_addr(0xCC00).unwrap();
    let start = Instant::now();
    let outcome = svc
        .wait_timeout_addr(&cv, 0xCC00, Duration::from_millis(50))
        .unwrap();
    assert!(outcome.timed_out());
    assert!(start.elapsed() >= Duration::from_millis(50));
    // The mutex was re-acquired on the way out.
    assert!(!svc.try_lock_addr(0xCC00).unwrap());
    svc.unlock_addr(0xCC00).unwrap();
    assert_eq!(cv.timeouts(), 1);
}

#[test]
fn debug_mode_flags_waiting_without_holding() {
    let svc = GlsService::with_config(GlsConfig::debug());
    let cv = GlsCondvar::new();
    // Waiting with a mutex that was never locked is the same class of bug
    // as releasing it.
    let err = svc
        .wait_timeout_addr(&cv, 0xDD00, Duration::from_millis(10))
        .unwrap_err();
    assert_eq!(err.category(), "release-free-lock");
    assert!(!svc.issues().is_empty());
}

#[test]
fn notify_one_hands_over_fifo_and_notify_all_drains() {
    let svc = Arc::new(GlsService::new());
    let cv = Arc::new(GlsCondvar::new());
    let woken = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let cv = Arc::clone(&cv);
            let woken = Arc::clone(&woken);
            std::thread::spawn(move || {
                svc.lock_addr(0xEE00).unwrap();
                svc.wait_addr(&cv, 0xEE00).unwrap();
                svc.unlock_addr(0xEE00).unwrap();
                woken.fetch_add(1, Ordering::SeqCst);
            })
        })
        .collect();
    while cv.waiters() < 4 {
        std::thread::yield_now();
    }
    assert!(cv.notify_one());
    let deadline = Instant::now() + Duration::from_secs(5);
    while woken.load(Ordering::SeqCst) < 1 && Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(
        woken.load(Ordering::SeqCst),
        1,
        "notify_one wakes exactly one"
    );
    assert_eq!(cv.notify_all(), 3);
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(woken.load(Ordering::SeqCst), 4);
    assert_eq!(cv.waiters(), 0);
}
