//! Scale test for the growable parking-lot bucket table: thousands of
//! simultaneously *contended* locks (each with a parked waiter) must grow
//! the table off the hot path so they stop colliding on the initial 64
//! bucket mutexes, and every waiter must survive the table swaps.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use gls_locks::park::DEFAULT_PARK_TOKEN;
use gls_locks::{FutexLock, ParkingLot, QueueInformed, RawLock};

#[test]
fn four_thousand_contended_locks_grow_the_table() {
    // A dedicated lot starting at the production size (64 buckets). Each
    // thread parks under a distinct address — the "one contended lock with
    // one parked waiter" shape — with small stacks so >4k OS threads stay
    // cheap.
    const LOCKS: usize = 4_200;
    let lot = Arc::new(ParkingLot::with_buckets(64));
    let parked = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..LOCKS)
        .map(|i| {
            let lot = Arc::clone(&lot);
            let parked = Arc::clone(&parked);
            std::thread::Builder::new()
                .stack_size(96 * 1024)
                .spawn(move || {
                    lot.park(
                        0x10_0000 + i * 64,
                        DEFAULT_PARK_TOKEN,
                        || {
                            parked.fetch_add(1, Ordering::Relaxed);
                            true
                        },
                        || {},
                        None,
                    )
                })
                .expect("spawning a parker")
        })
        .collect();
    while parked.load(Ordering::Relaxed) < LOCKS {
        std::thread::yield_now();
    }
    assert_eq!(lot.total_parked(), LOCKS);
    // 4200 parked waiters over a load factor of 3 demand >= 2048 buckets;
    // the initial table had 64.
    assert!(
        lot.buckets() >= 2048,
        "the table must have grown for {} contended locks (buckets = {})",
        LOCKS,
        lot.buckets()
    );
    // Every waiter is still reachable under its own address after the
    // growth (no waiter was lost in a table swap)...
    for i in (0..LOCKS).step_by(97) {
        assert_eq!(lot.parked_count(0x10_0000 + i * 64), 1);
    }
    // ...and every single one wakes.
    for i in 0..LOCKS {
        assert_eq!(lot.unpark_all(0x10_0000 + i * 64, 7), 1);
    }
    for h in handles {
        assert!(h.join().unwrap().is_unparked());
    }
    assert_eq!(lot.total_parked(), 0);
}

#[test]
fn global_lot_growth_is_transparent_to_futex_locks() {
    // Drive enough simultaneously-contended futex locks through the
    // *global* lot to cross its growth threshold; lock operations (and
    // their queue_length accounting) must be oblivious to the table swap.
    const LOCKS: usize = 256;
    let locks: Arc<Vec<FutexLock>> = Arc::new((0..LOCKS).map(|_| FutexLock::new()).collect());
    for lock in locks.iter() {
        lock.lock();
    }
    let waiters: Vec<_> = (0..LOCKS)
        .map(|i| {
            let locks = Arc::clone(&locks);
            std::thread::Builder::new()
                .stack_size(96 * 1024)
                .spawn(move || {
                    locks[i].lock();
                    locks[i].unlock();
                })
                .expect("spawning a waiter")
        })
        .collect();
    // Wait until every lock reports its parked waiter.
    for lock in locks.iter() {
        while lock.queue_length() < 2 {
            std::thread::yield_now();
        }
    }
    assert!(
        ParkingLot::global().buckets() > 64,
        "256 contended locks push the global lot past its initial table"
    );
    for lock in locks.iter() {
        lock.unlock();
    }
    for h in waiters {
        h.join().unwrap();
    }
    for lock in locks.iter() {
        assert!(!lock.is_locked());
        assert_eq!(lock.queue_length(), 0);
    }
}
