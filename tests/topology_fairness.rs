//! Integration tests for the topology API and the cohort handoff policy.
//!
//! Three concerns, each testable without a multi-socket machine:
//!
//! * pinning round-trips through the kernel (skipped, not failed, where
//!   affinity is unsupported — non-Linux platforms, restrictive sandboxes);
//! * the cohort handoff prefers same-domain waiters but admits a remote
//!   queue head within the bypass bound — driven deterministically at the
//!   park-token level through the real parking-lot bucket lock;
//! * the GLK crossover that only multi-core measurement exposes: the same
//!   contended workload settles in a *spin* mode when the workers fit the
//!   machine and in *blocking* mutex mode when they exceed it.

// Integration stress tests drive real OS threads on wall-clock time;
// raw std sync and sleeps are the point here (see clippy.toml).
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gls::glk::{GlkConfig, GlkLock, GlkMode, MonitorHandle};
use gls_locks::cohort::{choose_handoff, encode_token, COHORT_BYPASS_LIMIT};
use gls_locks::futex_mutex::TOKEN_MUTEX_WAITER;
use gls_locks::ParkingLot;
use gls_runtime::sysload::{SystemLoadConfig, SystemLoadMonitor};
use gls_runtime::topology;

/// Polls until `cond` holds or the deadline passes; returns whether it held.
fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while !cond() {
        if Instant::now() >= end {
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    true
}

#[test]
fn pinning_round_trips_through_the_kernel_or_skips() {
    // Run on a throwaway thread so the test harness thread keeps its
    // affinity no matter what happens here.
    let outcome = std::thread::spawn(|| {
        if !topology::pin_to(0) {
            return None;
        }
        let first = (
            topology::pinned_context(),
            topology::current_context(),
            topology::current_domain(),
        );
        let last_ctx = gls_runtime::hardware_contexts() - 1;
        if !topology::pin_to(last_ctx) {
            return None;
        }
        Some((
            first,
            last_ctx,
            topology::pinned_context(),
            topology::current_context(),
            topology::current_domain(),
        ))
    })
    .join()
    .expect("pinning probe thread");

    let Some((first, last_ctx, pinned, current, domain)) = outcome else {
        eprintln!("skipping: thread pinning is not available on this host");
        assert!(
            !topology::pinning_supported() || !gls_bench::pinning_effective(),
            "pin_to failed although this platform supports pinning and the probe succeeded"
        );
        return;
    };
    // Pinned to context 0: intent recorded, and the kernel (where getcpu is
    // available) must actually run the thread there.
    assert_eq!(first.0, Some(0));
    if let Some(ctx) = first.1 {
        assert_eq!(ctx, 0, "pinned to 0 but running on {ctx}");
    }
    assert_eq!(first.2, topology::domain_of(0));
    // Re-pinned to the last context: everything moves consistently.
    assert_eq!(pinned, Some(last_ctx));
    if let Some(ctx) = current {
        assert_eq!(ctx, last_ctx, "pinned to {last_ctx} but running on {ctx}");
    }
    assert_eq!(domain, topology::domain_of(last_ctx));
}

#[test]
fn cohort_handoff_prefers_local_but_admits_remote_within_bound() {
    // Deterministic, token-level: waiters park with hand-crafted
    // domain-stamped tokens on a private lot, and the test drives the exact
    // policy (`choose_handoff`) the futex lock runs under the bucket lock.
    // One *remote* waiter parks first (queue head, domain 0), five *local*
    // waiters (domain 1, the releaser's) behind it. Local waiters are
    // preferred — but the head must be admitted after at most
    // `COHORT_BYPASS_LIMIT` consecutive bypasses, long before the queue
    // drains.
    const ADDR: usize = 0xC0_0FFE;
    const HANDOFF_TOKEN: usize = 7;
    let lot = Arc::new(ParkingLot::with_buckets(8));
    let order: Arc<Mutex<Vec<(&'static str, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let mut waiters = Vec::new();
    let mut spawn_waiter = |label: &'static str, domain: usize, expected_parked: usize| {
        let parker_lot = Arc::clone(&lot);
        let order = Arc::clone(&order);
        waiters.push(std::thread::spawn(move || {
            let result = parker_lot.park(
                ADDR,
                encode_token(TOKEN_MUTEX_WAITER, Some(domain)),
                || true,
                || {},
                None,
            );
            let token = match result {
                gls_locks::ParkResult::Unparked(t) => t,
                other => panic!("{label} park ended with {other:?}"),
            };
            order.lock().unwrap().push((label, token));
        }));
        assert!(
            wait_until(Duration::from_secs(10), || lot.parked_count(ADDR)
                == expected_parked),
            "{label} did not reach the queue"
        );
    };
    spawn_waiter("remote", 0, 1);
    for (i, label) in ["local1", "local2", "local3", "local4", "local5"]
        .into_iter()
        .enumerate()
    {
        spawn_waiter(label, 1, i + 2);
    }

    // Six releases from domain 1, persisting the bypass counter exactly as
    // the futex word does. FIFO + policy make the wake order fully
    // deterministic: four locals bypass the remote head, then the spent
    // budget forces the head in, then the last local drains.
    let mut bypass = 0u32;
    for round in 0..6 {
        let bypassed = std::cell::Cell::new(false);
        let woken = lot.unpark_choose_with(
            ADDR,
            |tokens| {
                let c = choose_handoff(tokens, TOKEN_MUTEX_WAITER, 1, bypass, COHORT_BYPASS_LIMIT)?;
                assert!(c.handoff, "all waiters here are native");
                bypassed.set(c.bypassed_head);
                Some((c.index, HANDOFF_TOKEN))
            },
            |_| {},
        );
        assert_eq!(woken.unparked, 1, "release {round} must wake someone");
        bypass = if bypassed.get() { bypass + 1 } else { 0 };
        assert!(
            wait_until(Duration::from_secs(10), || order.lock().unwrap().len()
                == round + 1),
            "woken waiter {round} did not report"
        );
    }
    for w in waiters {
        w.join().unwrap();
    }

    let order = order.lock().unwrap();
    let labels: Vec<&str> = order.iter().map(|(l, _)| *l).collect();
    assert_eq!(
        labels,
        ["local1", "local2", "local3", "local4", "remote", "local5"],
        "locals preferred, remote admitted after exactly the bypass budget"
    );
    assert!(order.iter().all(|&(_, t)| t == HANDOFF_TOKEN));
    assert_eq!(lot.parked_count(ADDR), 0);
}

/// Drives `workers` threads over one GLK lock while the main thread polls
/// the manual monitor; returns the settled mode. `extra_load` registers
/// that many additional runnable guards, emulating the oversubscription a
/// smaller machine would see from the same worker count.
fn settle_glk_mode(workers: usize, extra_load: usize, pin: bool) -> GlkMode {
    let monitor = Arc::new(SystemLoadMonitor::manual(SystemLoadConfig::default()));
    let lock = Arc::new(GlkLock::with_config_and_monitor(
        GlkConfig::default()
            .with_adaptation_period(256)
            .with_sampling_period(16),
        MonitorHandle::Custom(Arc::clone(&monitor)),
    ));
    let extra: Vec<_> = (0..extra_load).map(|_| monitor.runnable_guard()).collect();
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..workers)
        .map(|t| {
            let lock = Arc::clone(&lock);
            let monitor = Arc::clone(&monitor);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                if pin {
                    topology::pin_worker(t);
                }
                let _runnable = monitor.runnable_guard();
                while !stop.load(Ordering::Relaxed) {
                    lock.lock();
                    gls_runtime::spin_cycles(200);
                    lock.unlock();
                }
            })
        })
        .collect();
    let deadline = Instant::now() + Duration::from_secs(10);
    let target_reached = |mode: GlkMode| {
        // The oversubscribed arm settles Mutex; the fitting arm never may.
        if extra_load > 0 {
            mode == GlkMode::Mutex
        } else {
            // Give the fitting arm a full adaptation cycle, then sample.
            lock.acquisitions() > 2_048
        }
    };
    while !target_reached(lock.mode()) && Instant::now() < deadline {
        monitor.poll_once();
        std::thread::sleep(Duration::from_millis(1));
    }
    let settled = lock.mode();
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    drop(extra);
    settled
}

#[test]
fn glk_crossover_spin_on_multicore_blocking_when_oversubscribed() {
    let hw = gls_runtime::hardware_contexts();
    // Oversubscribed arm (runs on any host): the same workload with more
    // runnable tasks than contexts must settle in blocking mutex mode.
    let blocked = settle_glk_mode(2, hw * 2 + 1, false);
    assert_eq!(
        blocked,
        GlkMode::Mutex,
        "oversubscribed contended GLK must settle blocking"
    );
    // Multi-core arm: two pinned workers that *fit* the machine must keep
    // spinning (ticket or mcs) — the crossover a single-context box cannot
    // measure, because there two runnable workers already oversubscribe it.
    if hw < 2 {
        eprintln!("skipping multi-core arm: requires >= 2 hardware contexts (found {hw})");
        return;
    }
    let spun = settle_glk_mode(2, 0, true);
    assert_ne!(
        spun,
        GlkMode::Mutex,
        "two workers on >=2 contexts are not multiprogrammed and must keep spinning"
    );
}
