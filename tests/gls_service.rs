//! Cross-crate integration tests of the GLS service: address-keyed locking,
//! the explicit per-algorithm interface, profiling and table behaviour under
//! heavy multi-threaded use.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gls::{GlsConfig, GlsMode, GlsService, LockKind};

#[test]
fn service_protects_disjoint_counters_per_address() {
    let svc = Arc::new(GlsService::new());
    const SLOTS: usize = 32;
    // Plain (non-atomic) counters protected purely by GLS address locks.
    struct Slots(std::cell::UnsafeCell<[u64; SLOTS]>);
    // SAFETY: the cell is only touched while holding the lock under test;
    // that exclusion is exactly what the test verifies.
    unsafe impl Sync for Slots {}
    let slots = Arc::new(Slots(std::cell::UnsafeCell::new([0; SLOTS])));

    let threads = 8;
    let iters = 8_000usize;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let slots = Arc::clone(&slots);
            std::thread::spawn(move || {
                for i in 0..iters {
                    let slot = (i * 7 + t) % SLOTS;
                    let addr = 0x9000 + slot * 8;
                    svc.lock_addr(addr).unwrap();
                    // SAFETY: written while holding the lock under test.
                    unsafe {
                        (*slots.0.get())[slot] += 1;
                    }
                    svc.unlock_addr(addr).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // SAFETY: all worker threads are joined; nothing races this read.
    let total: u64 = unsafe { (*slots.0.get()).iter().sum() };
    assert_eq!(total, (threads * iters) as u64);
    assert_eq!(svc.lock_count(), SLOTS);
}

#[test]
fn every_explicit_algorithm_provides_mutual_exclusion_through_the_service() {
    for kind in LockKind::ALL {
        let svc = Arc::new(GlsService::new());
        let counter = Arc::new(AtomicU64::new(0));
        struct Cell(std::cell::UnsafeCell<u64>);
        // SAFETY: the cell is only touched while holding the lock under
        // test; that exclusion is exactly what the test verifies.
        unsafe impl Sync for Cell {}
        let raw = Arc::new(Cell(std::cell::UnsafeCell::new(0)));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let svc = Arc::clone(&svc);
                let counter = Arc::clone(&counter);
                let raw = Arc::clone(&raw);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        svc.lock_with(kind, 0x4242).unwrap();
                        // SAFETY: written while holding the lock under test.
                        unsafe { *raw.0.get() += 1 };
                        counter.fetch_add(1, Ordering::Relaxed);
                        svc.unlock_with(kind, 0x4242).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 30_000, "algorithm {kind}");
        // SAFETY: all worker threads are joined; nothing races this read.
        assert_eq!(unsafe { *raw.0.get() }, 30_000, "algorithm {kind}");
        assert_eq!(svc.algorithm_of(0x4242), Some(kind));
    }
}

#[test]
fn profiler_identifies_the_hot_lock() {
    let svc = Arc::new(GlsService::with_config(GlsConfig::profile()));
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                let mut x = (t + 1) as u64;
                for _ in 0..20_000 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    // 70% of accesses hit the "global" lock at 0x100.
                    let addr = if x % 10 < 7 {
                        0x100
                    } else {
                        0x200 + (x as usize % 8) * 8
                    };
                    svc.lock_addr(addr).unwrap();
                    gls_runtime::spin_cycles(300);
                    svc.unlock_addr(addr).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let report = svc.profile_report();
    assert!(report.len() >= 2);
    // The skewed lock must dominate by traffic; with short runs on a noisy
    // machine a cold lock can occasionally edge ahead on the *average* queue
    // metric, so the traffic count is the robust signal to check.
    let hot = report
        .locks
        .iter()
        .find(|l| l.addr == 0x100)
        .expect("hot lock must be profiled");
    assert!(
        report
            .locks
            .iter()
            .all(|l| l.acquisitions <= hot.acquisitions),
        "the skewed lock must have the most acquisitions"
    );
    assert!(hot.acquisitions > 0);
    assert!(hot.avg_cs_latency > 0.0);
    assert!(hot.avg_queue >= 0.0);
}

#[test]
fn trylock_contention_only_one_winner_at_a_time() {
    let svc = Arc::new(GlsService::new());
    let concurrent = Arc::new(AtomicU64::new(0));
    let violations = Arc::new(AtomicU64::new(0));
    let acquired = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let concurrent = Arc::clone(&concurrent);
            let violations = Arc::clone(&violations);
            let acquired = Arc::clone(&acquired);
            std::thread::spawn(move || {
                for _ in 0..30_000 {
                    if svc.try_lock_addr(0x777).unwrap() {
                        if concurrent.fetch_add(1, Ordering::AcqRel) != 0 {
                            violations.fetch_add(1, Ordering::Relaxed);
                        }
                        acquired.fetch_add(1, Ordering::Relaxed);
                        concurrent.fetch_sub(1, Ordering::AcqRel);
                        svc.unlock_addr(0x777).unwrap();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(violations.load(Ordering::Relaxed), 0);
    assert!(acquired.load(Ordering::Relaxed) > 0);
}

#[test]
fn free_and_recreate_cycles_are_safe() {
    let svc = GlsService::new();
    for round in 0..200usize {
        let addr = 0x6000;
        svc.lock_addr(addr).unwrap();
        svc.unlock_addr(addr).unwrap();
        assert!(svc.free_addr(addr), "round {round}");
        assert_eq!(svc.lock_count(), 0);
    }
}

#[test]
fn debug_mode_issue_log_accumulates_across_threads() {
    let svc = Arc::new(GlsService::with_config(
        GlsConfig::default().with_mode(GlsMode::Debug),
    ));
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let svc = Arc::clone(&svc);
            std::thread::spawn(move || {
                // Every thread unlocks an address it never locked.
                let _ = svc.unlock_addr(0xdead0 + t);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let issues = svc.issues();
    assert_eq!(issues.len(), 4);
    assert!(issues.iter().all(|i| i.category() == "uninitialized-lock"));
    svc.clear_issues();
    assert!(svc.issues().is_empty());
}

#[test]
fn lock_count_matches_distinct_addresses_used() {
    let svc = GlsService::new();
    for i in 1..=500usize {
        svc.lock_addr(i * 16).unwrap();
        svc.unlock_addr(i * 16).unwrap();
    }
    assert_eq!(svc.lock_count(), 500);
    let stats = svc.table_stats();
    assert_eq!(stats.elements, 500);
    assert!(stats.occupancy > 0.0);
}
