//! Reader-writer locking through the GLS service: sharing semantics, data
//! consistency under mixed reader/writer stress with deadlock detection
//! enabled, and writer liveness under continuous reader churn.

// Integration stress tests drive real OS threads on wall-clock time;
// raw std sync and sleeps are the point here (see clippy.toml).
#![allow(clippy::disallowed_types, clippy::disallowed_methods)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gls::{GlsConfig, GlsService, LockKind};

#[test]
fn rw_guards_share_and_exclude_through_the_service() {
    let svc = GlsService::new();
    let table = vec![0u8; 16];
    {
        let r1 = svc.read_guard(&table).unwrap();
        let r2 = svc.read_guard(&table).unwrap();
        assert_eq!(r1.addr(), r2.addr());
        assert!(
            !svc.try_write_lock(&table).unwrap(),
            "readers must exclude writers"
        );
    }
    {
        let _w = svc.write_guard(&table).unwrap();
        assert!(
            !svc.try_read_lock(&table).unwrap(),
            "a writer must exclude readers"
        );
    }
    assert_eq!(
        svc.algorithm_of(GlsService::address_of(&table)),
        Some(LockKind::Rw)
    );
}

/// The acceptance scenario of the rw subsystem: many readers and writers
/// mixing through a debug-mode service (ownership tracking, shared-holder
/// tracking and deadlock detection all enabled), with the data itself
/// checked for torn reads. A second address is always locked after the
/// first, so the detector sees real nesting but no cycle.
#[test]
fn mixed_rw_stress_with_deadlock_detection_stays_clean() {
    struct Shared(std::cell::UnsafeCell<(u64, u64)>);
    // SAFETY: the cell is only touched while holding the lock under test;
    // that exclusion is exactly what the test verifies.
    unsafe impl Sync for Shared {}

    let svc = Arc::new(GlsService::with_config(
        GlsConfig::debug().with_deadlock_check_after(Duration::from_millis(100)),
    ));
    let shared = Arc::new(Shared(std::cell::UnsafeCell::new((0, 0))));
    let outer = 0x11_0000_usize;
    let inner = 0x22_0000_usize;

    let handles: Vec<_> = (0..6)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || {
                for i in 0..1_500usize {
                    if (t + i) % 5 == 0 {
                        // Writer: exclusive on the outer lock, then a nested
                        // exclusive section on the inner lock (consistent
                        // order, so never a deadlock).
                        svc.write_lock_addr(outer).unwrap();
                        svc.write_lock_addr(inner).unwrap();
                        // SAFETY: written while holding the write lock under test.
                        unsafe {
                            (*shared.0.get()).0 += 1;
                            (*shared.0.get()).1 += 1;
                        }
                        svc.write_unlock_addr(inner).unwrap();
                        svc.write_unlock_addr(outer).unwrap();
                    } else {
                        // Reader: shared on the outer lock; the pair must
                        // never be observed torn.
                        svc.read_lock_addr(outer).unwrap();
                        // SAFETY: read under the read lock; writers are excluded.
                        let (a, b) = unsafe { *shared.0.get() };
                        assert_eq!(a, b, "torn read under the service rw lock");
                        svc.read_unlock_addr(outer).unwrap();
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // SAFETY: all worker threads are joined; nothing races this read.
    let (a, b) = unsafe { *shared.0.get() };
    assert_eq!(a, b);
    assert!(a > 0, "writers must have made progress");
    assert!(
        svc.issues().is_empty(),
        "well-ordered rw stress must record no issues: {:?}",
        svc.issues()
    );
}

/// Writer liveness through the service: a writer must acquire within
/// bounded time while 8 reader threads loop continuously (the service-level
/// face of the writer-intent regression test in `gls_locks`).
#[test]
fn service_writer_completes_under_continuous_reader_churn() {
    let svc = Arc::new(GlsService::new());
    let stop = Arc::new(AtomicBool::new(false));
    let addr = 0x33_0000_usize;
    let readers: Vec<_> = (0..8)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    svc.read_lock_addr(addr).unwrap();
                    svc.read_unlock_addr(addr).unwrap();
                }
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(50));
    let start = Instant::now();
    svc.write_lock_addr(addr).unwrap();
    let waited = start.elapsed();
    svc.write_unlock_addr(addr).unwrap();
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
    assert!(
        waited < Duration::from_secs(10),
        "writer starved for {waited:?} behind the service rw lock"
    );
}

/// Upgrade attempts (write while holding read) self-deadlock on a
/// writer-preferring rwlock; the debug mode must flag them instead of
/// hanging.
#[test]
fn debug_mode_flags_upgrade_attempts() {
    let svc = GlsService::with_config(GlsConfig::debug());
    svc.read_lock_addr(0x44_0000).unwrap();
    let err = svc.write_lock_addr(0x44_0000).unwrap_err();
    assert_eq!(err.category(), "double-lock");
    svc.read_unlock_addr(0x44_0000).unwrap();
}
