//! Value-generation strategies.

use std::ops::{Range, RangeInclusive};

use rand::Rng;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the test RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),* $(,)?) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn new_value(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

/// Uniform choice between same-typed strategies; built by [`prop_oneof!`].
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<V> {
    arms: Vec<UnionArm<V>>,
}

/// One type-erased generator arm of a [`Union`].
pub type UnionArm<V> = Box<dyn Fn(&mut TestRng) -> V>;

impl<V> Union<V> {
    /// Builds a union from boxed generator arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<UnionArm<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }

    /// Erases one strategy into a generator arm.
    pub fn arm<S>(strategy: S) -> UnionArm<V>
    where
        S: Strategy<Value = V> + 'static,
    {
        Box::new(move |rng| strategy.new_value(rng))
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn new_value(&self, rng: &mut TestRng) -> V {
        let index = rng.gen_range(0..self.arms.len());
        (self.arms[index])(rng)
    }
}
