//! Collection strategies: `vec` and `hash_set`.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

use rand::Rng;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `Vec`s whose length is drawn uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(
        size.start < size.end,
        "empty size range for collection::vec"
    );
    VecStrategy { element, size }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generates `HashSet`s whose size is drawn uniformly from `size`.
///
/// Element generation is retried on duplicates (bounded), so the final set
/// can be smaller than the drawn size when the element domain is narrow.
pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    assert!(
        size.start < size.end,
        "empty size range for collection::hash_set"
    );
    HashSetStrategy { element, size }
}

/// See [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> HashSet<S::Value> {
        let target = rng.gen_range(self.size.clone()).max(1);
        let mut set = HashSet::with_capacity(target);
        let mut attempts = 0usize;
        while set.len() < target && attempts < target.saturating_mul(64) {
            set.insert(self.element.new_value(rng));
            attempts += 1;
        }
        set
    }
}
