//! Deterministic runner state: per-test RNG, config, case errors.

use std::fmt;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test. Overridable at runtime via the
    /// `GLS_PROPTEST_CASES` environment variable.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The configured case count after applying environment overrides.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("GLS_PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The per-test random number generator.
///
/// Seeded deterministically from the test's fully qualified name so CI runs
/// are reproducible; `GLS_PROPTEST_SEED` perturbs the seed for exploration.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Creates the RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut seed = fnv1a(name.as_bytes());
        if let Ok(extra) = std::env::var("GLS_PROPTEST_SEED") {
            if let Ok(extra) = extra.parse::<u64>() {
                seed ^= extra.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
        }
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// FNV-1a over `bytes`: stable across platforms, processes and rustc
/// versions, unlike `DefaultHasher`.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01B3);
    }
    hash
}
