//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace builds fully offline, so this vendored crate reimplements
//! the subset of proptest used by the GLS test pyramid:
//!
//! * the [`proptest!`] macro with `arg in strategy` parameters and an
//!   optional `#![proptest_config(..)]` header,
//! * [`prop_assert!`] / [`prop_assert_eq!`],
//! * range strategies over integers and floats, tuple strategies,
//!   [`Strategy::prop_map`], [`prop_oneof!`],
//! * [`collection::vec`] and [`collection::hash_set`].
//!
//! Design differences from real proptest, chosen for CI determinism:
//!
//! * **Fixed seeds.** Every test derives its RNG seed from its fully
//!   qualified name (FNV-1a), so runs are reproducible across machines and
//!   invocations. `GLS_PROPTEST_SEED` perturbs the seed for exploratory
//!   fuzzing; `GLS_PROPTEST_CASES` overrides the case count.
//! * **No shrinking.** On failure the offending inputs are printed in full
//!   (they are small by construction) instead of being minimized.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Defines deterministic property tests.
///
/// Supported grammar (the subset this workspace uses):
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(128))] // optional
///
///     /// docs and attributes pass through
///     #[test]
///     fn name(arg in strategy, arg2 in strategy2) { body }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            let mut rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            // Strategies are built once; each case draws fresh values.
            $(let $arg = $strat;)+
            for case in 0..cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&$arg, &mut rng);)+
                let described = ::std::format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(err) = outcome {
                    ::std::panic!(
                        "proptest {}: case {}/{} failed: {}\n  inputs: {}",
                        stringify!($name), case + 1, cases, err, described,
                    );
                }
            }
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

/// Fails the current property-test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property-test case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), left, right,
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    }};
}

/// Chooses uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $( $crate::strategy::Union::arm($strat) ),+
        ])
    };
}
