//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! The workspace builds fully offline, so this vendored crate provides
//! exactly the API surface used by `gls_workloads` and `gls_systems`:
//!
//! * [`Rng::gen_range`] over integer and float ranges,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`], a xoshiro256** generator seeded via SplitMix64.
//!
//! The statistical quality is more than sufficient for workload generation
//! and the zipfian frequency tests (xoshiro256** passes BigCrush); it is not
//! cryptographically secure and makes no attempt to be.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly distributed over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// A range that knows how to sample a single uniform value from itself.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($ty:ty),* $(,)?) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $ty
            }
        }

        impl SampleRange<$ty> for RangeInclusive<$ty> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 128-bit type cannot occur
                    // here (largest type is 64-bit), but keep the guard honest.
                    return rng.next_u64() as $ty;
                }
                let v = (rng.next_u64() as u128) % span;
                (start as u128).wrapping_add(v) as $ty
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Converts 53 random bits into a float in `[0, 1)`.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        // The closed upper bound is approximated by scaling the half-open
        // unit draw; for workload generation the distinction is immaterial.
        start + (end - start) * ((rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded by SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(
                a.gen_range(0usize..1_000_000),
                b.gen_range(0usize..1_000_000)
            );
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(1usize..=8);
            assert!((1..=8).contains(&i));
        }
    }

    #[test]
    fn integer_draws_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unsized_rng_is_usable_through_a_trait_object_bound() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let v = draw(&mut rng);
        assert!((0.0..1.0).contains(&v));
    }
}
