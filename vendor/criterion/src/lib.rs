//! Minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The workspace builds fully offline, so this vendored crate provides the
//! subset of criterion used by the `gls_bench` benches: `criterion_group!` /
//! `criterion_main!`, benchmark groups with `sample_size` / `warm_up_time` /
//! `measurement_time` / `throughput`, `bench_function` / `bench_with_input`,
//! `Bencher::iter` / `iter_custom`, `BenchmarkId` and `black_box`.
//!
//! Statistics are intentionally simple: each benchmark is warmed up, then
//! measured in `sample_size` wall-time samples, and the mean/min time per
//! iteration is printed. There are no plots, baselines or outlier analysis —
//! the point is that `cargo bench` runs the real measurement loops offline.

use std::fmt::{self, Display};
use std::marker::PhantomData;
use std::time::{Duration, Instant};

pub mod measurement {
    //! Measurement backends (wall time only).

    /// Wall-clock time measurement.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct WallTime;
}

use measurement::WallTime;

/// Prevents the compiler from optimizing away a value computation.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Combines a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        Self { id: id.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    default_warm_up: Duration,
    default_measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
            default_warm_up: Duration::from_millis(100),
            default_measurement: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_, WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            warm_up: self.default_warm_up,
            measurement: self.default_measurement,
            throughput: None,
            _criterion: PhantomData,
        }
    }
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a, M = WallTime> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
    _criterion: PhantomData<&'a M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of measurement samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Warm-up duration before measuring.
    pub fn warm_up_time(&mut self, duration: Duration) -> &mut Self {
        self.warm_up = duration;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement = duration;
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.warm_up, self.measurement, self.sample_size);
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.warm_up, self.measurement, self.sample_size);
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let Some((iters, elapsed)) = bencher.result else {
            println!("{}/{}: no measurement recorded", self.name, id);
            return;
        };
        let per_iter = elapsed.as_secs_f64() / iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!(
                    "  {:.0} elem/s",
                    n as f64 * iters as f64 / elapsed.as_secs_f64()
                )
            }
            Some(Throughput::Bytes(n)) => {
                format!(
                    "  {:.0} B/s",
                    n as f64 * iters as f64 / elapsed.as_secs_f64()
                )
            }
            None => String::new(),
        };
        println!(
            "{}/{}: {:>12} per iter ({} iters in {:.3} s){}",
            self.name,
            id,
            format_ns(per_iter * 1e9),
            iters,
            elapsed.as_secs_f64(),
            rate,
        );
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Measures one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    result: Option<(u64, Duration)>,
}

impl Bencher {
    fn new(warm_up: Duration, measurement: Duration, sample_size: usize) -> Self {
        Self {
            warm_up,
            measurement,
            sample_size,
            result: None,
        }
    }

    /// Times repeated calls of `f` over the measurement budget.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let warm_up_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_up_end {
            black_box(f());
        }
        let mut iters = 0u64;
        let start = Instant::now();
        let deadline = start + self.measurement;
        loop {
            // Amortize the clock read over small batches.
            for _ in 0..64 {
                black_box(f());
            }
            iters += 64;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.result = Some((iters, start.elapsed()));
    }

    /// Hands full timing control to `f`: it receives an iteration count and
    /// must return the total elapsed time for that many iterations.
    pub fn iter_custom<F>(&mut self, mut f: F)
    where
        F: FnMut(u64) -> Duration,
    {
        let iters = self.sample_size as u64;
        let elapsed = f(iters);
        self.result = Some((iters, elapsed));
    }
}

/// Collects benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
